#include <algorithm>
#include <memory>
#include <vector>

#include "cp/constraints.hpp"
#include "cp/sparse_bitset.hpp"

namespace rr::cp {
namespace {

/// Positive table constraint with straight support scanning: a tuple is
/// live iff every component is still in its variable's domain; a value
/// survives iff some live tuple uses it. O(#tuples x arity) per run.
/// Kept behind TableOptions{.compact = false} as the differential-testing
/// oracle for CompactTable.
class ScanningTable final : public Propagator {
 public:
  ScanningTable(std::vector<VarId> vars, std::vector<std::vector<int>> tuples)
      : Propagator(PropPriority::kLinear, PropKind::kTable),
        vars_(std::move(vars)),
        tuples_(std::move(tuples)) {}

  void attach(Space& space, int self) override {
    for (VarId v : vars_) space.subscribe(v, self, kOnDomain);
  }

  PropStatus propagate(Space& space) override {
    const std::size_t arity = vars_.size();
    // Supported values per variable, collected from live tuples.
    std::vector<std::vector<int>> supported(arity);
    bool any_live = false;
    for (const std::vector<int>& tuple : tuples_) {
      bool live = true;
      for (std::size_t i = 0; i < arity && live; ++i)
        live = space.dom(vars_[i]).contains(tuple[i]);
      if (!live) continue;
      any_live = true;
      for (std::size_t i = 0; i < arity; ++i)
        supported[i].push_back(tuple[i]);
    }
    if (!any_live) return PropStatus::kFail;
    bool all_assigned = true;
    for (std::size_t i = 0; i < arity; ++i) {
      if (space.intersect(vars_[i],
                          Domain::from_values(std::move(supported[i]))) ==
          ModEvent::kFail)
        return PropStatus::kFail;
      all_assigned = all_assigned && space.assigned(vars_[i]);
    }
    return all_assigned ? PropStatus::kSubsumed : PropStatus::kFix;
  }

 private:
  std::vector<VarId> vars_;
  std::vector<std::vector<int>> tuples_;
};

void or_into(std::span<std::uint64_t> acc,
             std::span<const std::uint64_t> src) noexcept {
  for (std::size_t w = 0; w < acc.size(); ++w) acc[w] |= src[w];
}

/// Compact-table propagation (Demeulenaere et al., CP 2016): the set of
/// live tuples is a reversible sparse bitset; per-(var,value) support masks
/// are precomputed at post time. A propagation run
///   1. drains the dirty-variable set recorded by modified(), turning each
///      variable's domain delta (known-values bitset minus current domain)
///      into one word-parallel AND-NOT (or AND, whichever side is smaller)
///      on the live set — supports of one variable position partition the
///      tuple set, so the delta update is exact and needs no reset path;
///   2. re-checks supports only when the live set actually changed
///      (version stamp), probing each value's last witness word first
///      (residue) and pruning via Space::keep_masked.
/// Steady-state runs (delta was a no-op) touch nothing and allocate
/// nothing.
class CompactTable final : public Propagator {
 public:
  CompactTable(std::vector<VarId> vars, std::vector<std::vector<int>> tuples)
      : Propagator(PropPriority::kLinear, PropKind::kTable),
        vars_(std::move(vars)),
        tuples_(std::move(tuples)),
        tuple_words_(static_cast<std::size_t>(ReversibleSparseBitSet::words_for(
            static_cast<long>(tuples_.size())))) {
    const std::size_t arity = vars_.size();
    info_.resize(arity);
    std::size_t support_offset = 0;
    std::size_t residue_offset = 0;
    std::size_t max_words = 0;
    for (std::size_t i = 0; i < arity; ++i) {
      int lo = tuples_[0][i];
      int hi = lo;
      for (const std::vector<int>& t : tuples_) {
        lo = std::min(lo, t[i]);
        hi = std::max(hi, t[i]);
      }
      VarInfo& vi = info_[i];
      vi.base = lo;
      vi.nvals = hi - lo + 1;
      vi.mask_words = static_cast<std::size_t>(
          ReversibleSparseBitSet::words_for(vi.nvals));
      vi.support_offset = support_offset;
      vi.residue_offset = residue_offset;
      support_offset += static_cast<std::size_t>(vi.nvals) * tuple_words_;
      residue_offset += static_cast<std::size_t>(vi.nvals);
      max_words = std::max(max_words, vi.mask_words);
    }
    support_words_.assign(support_offset, 0);
    residues_.assign(residue_offset, -1);
    for (std::size_t t = 0; t < tuples_.size(); ++t) {
      for (std::size_t i = 0; i < arity; ++i) {
        support(i, tuples_[t][i])[t >> 6] |= std::uint64_t{1} << (t & 63u);
      }
    }
    dom_scratch_.resize(max_words);
    removed_scratch_.resize(max_words);
    keep_scratch_.resize(max_words);
    tuple_scratch_.resize(tuple_words_);
    in_dirty_.assign(arity, false);
    dirty_.reserve(arity);
  }

  [[nodiscard]] bool advised() const noexcept override { return true; }

  void attach(Space& space, int self) override {
    for (std::size_t i = 0; i < vars_.size(); ++i)
      space.subscribe(vars_[i], self, kOnDomain, static_cast<int>(i));
    // Initialize known-value sets and the live-tuple set from the current
    // (root) domains; later changes arrive through modified().
    for (VarInfo& vi : info_) {
      auto dmask = dom_mask(space, vi);
      vi.known.init_from_mask(dmask, vi.nvals);
    }
    std::fill(tuple_scratch_.begin(), tuple_scratch_.end(), 0);
    for (std::size_t t = 0; t < tuples_.size(); ++t) {
      bool live = true;
      for (std::size_t i = 0; i < vars_.size() && live; ++i) {
        const VarInfo& vi = info_[i];
        live = vi.known.test(tuples_[t][i] - vi.base);
      }
      if (live) tuple_scratch_[t >> 6] |= std::uint64_t{1} << (t & 63u);
    }
    live_.init_from_mask(tuple_scratch_, static_cast<long>(tuples_.size()));
  }

  void modified(Space& /*space*/, VarId /*var*/, int data) override {
    const auto i = static_cast<std::size_t>(data);
    if (!in_dirty_[i]) {
      in_dirty_[i] = true;
      dirty_.push_back(data);
    }
  }

  void level_pushed(Space& /*space*/) override {
    live_.push_level();
    for (VarInfo& vi : info_) vi.known.push_level();
  }

  void level_popped(Space& /*space*/) override {
    live_.pop_level();
    for (VarInfo& vi : info_) vi.known.pop_level();
  }

  PropStatus propagate(Space& space) override {
    if (space.failed()) return PropStatus::kFail;
    // Phase 1: fold each dirty variable's removed values into the live set.
    while (!dirty_.empty()) {
      const auto i = static_cast<std::size_t>(dirty_.back());
      dirty_.pop_back();
      in_dirty_[i] = false;
      VarInfo& vi = info_[i];
      auto dmask = dom_mask(space, vi);
      const auto known = vi.known.words();
      auto removed =
          std::span<std::uint64_t>(removed_scratch_).first(vi.mask_words);
      long removed_cnt = 0;
      long stay_cnt = 0;
      for (std::size_t w = 0; w < vi.mask_words; ++w) {
        removed[w] = known[w] & ~dmask[w];
        removed_cnt += std::popcount(removed[w]);
        stay_cnt += std::popcount(known[w] & dmask[w]);
      }
      if (removed_cnt == 0) continue;
      // Supports of one position partition the tuples, so masking with the
      // union of either side is exact; build the cheaper union.
      std::fill(tuple_scratch_.begin(), tuple_scratch_.end(), 0);
      if (removed_cnt <= stay_cnt) {
        for_each_value(removed, vi,
                       [&](int v) { or_into(tuple_scratch_, support(i, v)); });
        live_.and_not_mask(tuple_scratch_);
      } else {
        for (std::size_t w = 0; w < vi.mask_words; ++w)
          removed[w] = known[w] & dmask[w];
        for_each_value(removed, vi,
                       [&](int v) { or_into(tuple_scratch_, support(i, v)); });
        live_.and_mask(tuple_scratch_);
      }
      vi.known.and_mask(dmask);
      if (live_.empty()) return PropStatus::kFail;
    }
    // Phase 2: support check. If the live set has not changed since the
    // last full check, no value can have lost its support.
    if (!force_full_ && live_.version() == checked_version_)
      return PropStatus::kFix;
    force_full_ = false;
    bool all_assigned = true;
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      VarInfo& vi = info_[i];
      auto dmask = dom_mask(space, vi);
      const auto known = vi.known.words();
      auto keep = std::span<std::uint64_t>(keep_scratch_).first(vi.mask_words);
      std::fill(keep.begin(), keep.end(), 0);
      bool all_supported = true;
      for (std::size_t w = 0; w < vi.mask_words; ++w) {
        std::uint64_t word = known[w] & dmask[w];
        while (word != 0) {
          const int b = std::countr_zero(word);
          word &= word - 1;
          const std::size_t off = w * 64 + static_cast<std::size_t>(b);
          if (live_.intersects(support(i, vi.base + static_cast<int>(off)),
                               residues_[vi.residue_offset + off])) {
            keep[w] |= std::uint64_t{1} << static_cast<unsigned>(b);
          } else {
            all_supported = false;
          }
        }
      }
      const Domain& dom = space.dom(vars_[i]);
      const bool outside_window =
          dom.min() < vi.base || dom.max() >= vi.base + vi.nvals;
      if (!all_supported || outside_window) {
        if (space.keep_masked(vars_[i], vi.base, keep) == ModEvent::kFail)
          return PropStatus::kFail;
      }
      all_assigned = all_assigned && space.dom(vars_[i]).assigned();
    }
    checked_version_ = live_.version();
    return all_assigned ? PropStatus::kSubsumed : PropStatus::kFix;
  }

 private:
  struct VarInfo {
    int base = 0;   // smallest value any tuple uses at this position
    int nvals = 0;  // value-window span
    std::size_t mask_words = 0;
    std::size_t support_offset = 0;
    std::size_t residue_offset = 0;
    ReversibleSparseBitSet known;  // values not yet folded out of live_
  };

  [[nodiscard]] std::span<std::uint64_t> support(std::size_t i,
                                                 int v) noexcept {
    const VarInfo& vi = info_[i];
    return {support_words_.data() + vi.support_offset +
                static_cast<std::size_t>(v - vi.base) * tuple_words_,
            tuple_words_};
  }

  /// Current domain of vi's variable as a bitmask over its value window
  /// (filled into dom_scratch_).
  std::span<std::uint64_t> dom_mask(const Space& space, const VarInfo& vi) {
    auto dmask = std::span<std::uint64_t>(dom_scratch_).first(vi.mask_words);
    space.dom(vars_[&vi - info_.data()]).fill_words(vi.base, dmask);
    return dmask;
  }

  template <typename F>
  void for_each_value(std::span<const std::uint64_t> mask, const VarInfo& vi,
                      F&& fn) {
    for (std::size_t w = 0; w < mask.size(); ++w) {
      std::uint64_t word = mask[w];
      while (word != 0) {
        const int b = std::countr_zero(word);
        word &= word - 1;
        fn(vi.base + static_cast<int>(w * 64) + b);
      }
    }
  }

  std::vector<VarId> vars_;
  std::vector<std::vector<int>> tuples_;
  std::size_t tuple_words_;
  std::vector<VarInfo> info_;
  std::vector<std::uint64_t> support_words_;  // flattened per-(var,value)
  std::vector<int> residues_;  // last witness word per (var,value)
  ReversibleSparseBitSet live_;

  // Scratch buffers sized once in the constructor — propagate() allocates
  // nothing.
  std::vector<std::uint64_t> dom_scratch_;
  std::vector<std::uint64_t> removed_scratch_;
  std::vector<std::uint64_t> keep_scratch_;
  std::vector<std::uint64_t> tuple_scratch_;

  std::vector<int> dirty_;
  std::vector<bool> in_dirty_;
  bool force_full_ = true;
  std::uint64_t checked_version_ = 0;
};

/// Memory guard for the dense support tables: fall back to scanning when a
/// value window is huge or the total support storage would be excessive.
constexpr long kMaxValueSpan = 1 << 16;
constexpr std::size_t kMaxSupportWords = std::size_t{1} << 22;  // 32 MiB

bool compact_feasible(std::span<const VarId> vars,
                      const std::vector<std::vector<int>>& tuples) {
  if (tuples.empty()) return false;
  const std::size_t tuple_words = static_cast<std::size_t>(
      ReversibleSparseBitSet::words_for(static_cast<long>(tuples.size())));
  std::size_t total_words = 0;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    int lo = tuples[0][i];
    int hi = lo;
    for (const std::vector<int>& t : tuples) {
      lo = std::min(lo, t[i]);
      hi = std::max(hi, t[i]);
    }
    const long span = static_cast<long>(hi) - lo + 1;
    if (span > kMaxValueSpan) return false;
    total_words += static_cast<std::size_t>(span) * tuple_words;
    if (total_words > kMaxSupportWords) return false;
  }
  return true;
}

}  // namespace

int post_table(Space& space, std::span<const VarId> vars,
               std::vector<std::vector<int>> tuples, TableOptions options) {
  RR_REQUIRE(!vars.empty(), "table: needs at least one variable");
  for (const std::vector<int>& tuple : tuples) {
    RR_REQUIRE(tuple.size() == vars.size(),
               "table: tuple arity must match variable count");
  }
  std::vector<VarId> var_vec(vars.begin(), vars.end());
  if (options.compact && compact_feasible(vars, tuples)) {
    return space.post(std::make_unique<CompactTable>(std::move(var_vec),
                                                     std::move(tuples)));
  }
  return space.post(std::make_unique<ScanningTable>(std::move(var_vec),
                                                    std::move(tuples)));
}

}  // namespace rr::cp
