#include "cp/space.hpp"

#include <algorithm>

#include "util/metrics.hpp"
#include "util/stopwatch.hpp"

namespace rr::cp {

Space::Space() {
#ifndef RRPLACE_DISABLE_METRICS
  collect_metrics_ = metrics::enabled();
#endif
}

VarId Space::new_var(int lo, int hi) { return new_var(Domain(lo, hi)); }

VarId Space::new_var(Domain dom) {
  RR_REQUIRE(!dom.empty(), "new variable must have a non-empty domain");
  RR_REQUIRE(decision_level() == 0, "variables must be created at the root");
  const VarId id = static_cast<VarId>(domains_.size());
  domains_.push_back(std::move(dom));
  domain_saved_at_.push_back(-1);
  subscriptions_.emplace_back();
  return id;
}

void Space::save_domain(VarId v) {
  const int level = decision_level();
  if (level == 0) return;  // root changes are permanent
  auto& saved_at = domain_saved_at_[static_cast<std::size_t>(v)];
  if (saved_at == level) return;
  trail_.emplace_back(v, domains_[static_cast<std::size_t>(v)]);
  saved_at = level;
}

ModEvent Space::classify(VarId v, const Domain& before) const noexcept {
  const Domain& after = dom(v);
  if (after.empty()) return ModEvent::kFail;
  if (after.assigned() && !before.assigned()) return ModEvent::kAssign;
  if (after.min() != before.min() || after.max() != before.max())
    return ModEvent::kBounds;
  return ModEvent::kDomain;
}

ModEvent Space::apply_result(VarId v, const Domain& before, bool changed) {
  if (!changed) return ModEvent::kNone;
  ++stats_.domain_changes;
  const ModEvent event = classify(v, before);
  if (event == ModEvent::kFail) {
    failed_ = true;
    return event;
  }
  notify(v, event);
  return event;
}

// The mutators all follow the same scheme: snapshot (for trailing and event
// classification), mutate, classify, notify.
#define RR_SPACE_MUTATE(v, expr)                           \
  if (failed_) return ModEvent::kFail;                     \
  save_domain(v);                                          \
  const Domain before = dom(v);                            \
  Domain& d = domains_[static_cast<std::size_t>(v)];       \
  const bool changed = (expr);                             \
  return apply_result(v, before, changed)

ModEvent Space::set_min(VarId v, int bound) {
  if (bound <= dom(v).min()) return ModEvent::kNone;  // fast no-op path
  RR_SPACE_MUTATE(v, d.remove_below(bound));
}
ModEvent Space::set_max(VarId v, int bound) {
  if (bound >= dom(v).max()) return ModEvent::kNone;
  RR_SPACE_MUTATE(v, d.remove_above(bound));
}
ModEvent Space::assign(VarId v, int value) {
  if (dom(v).assigned() && dom(v).value() == value) return ModEvent::kNone;
  RR_SPACE_MUTATE(v, d.assign_value(value));
}
ModEvent Space::remove(VarId v, int value) {
  if (!dom(v).contains(value)) return ModEvent::kNone;
  RR_SPACE_MUTATE(v, d.remove(value));
}
ModEvent Space::remove_range(VarId v, int lo, int hi) {
  RR_SPACE_MUTATE(v, d.remove_range(lo, hi));
}
ModEvent Space::remove_values_sorted(VarId v, std::span<const int> values) {
  RR_SPACE_MUTATE(v, d.remove_values_sorted(values));
}
ModEvent Space::intersect(VarId v, const Domain& with) {
  RR_SPACE_MUTATE(v, d.intersect(with));
}
ModEvent Space::keep_masked(VarId v, int base,
                            std::span<const std::uint64_t> mask) {
  RR_SPACE_MUTATE(v, d.keep_masked(base, mask));
}

#undef RR_SPACE_MUTATE

int Space::post(std::unique_ptr<Propagator> propagator) {
  RR_ASSERT(propagator != nullptr);
  // Advised propagators keep trailed internal state whose level marks must
  // start in lockstep with the Space's (see push()/pop()).
  RR_ASSERT(decision_level() == 0 || !propagator->advised());
  const int id = static_cast<int>(propagators_.size());
  propagators_.push_back(std::move(propagator));
  scheduled_.push_back(false);
  subsumed_.push_back(false);
  advised_.push_back(propagators_.back()->advised());
  if (advised_.back()) advisors_.push_back(id);
  propagators_.back()->attach(*this, id);
  schedule(id);
  return id;
}

void Space::subscribe(VarId v, int prop, unsigned mask, int data) {
  RR_ASSERT(v >= 0 && v < num_vars());
  subscriptions_[static_cast<std::size_t>(v)].push_back(
      Subscription{prop, mask, data});
}

void Space::schedule(int prop) {
  RR_ASSERT(prop >= 0 && prop < num_propagators());
  if (scheduled_[static_cast<std::size_t>(prop)] ||
      subsumed_[static_cast<std::size_t>(prop)])
    return;
  scheduled_[static_cast<std::size_t>(prop)] = true;
  const int bucket =
      static_cast<int>(propagators_[static_cast<std::size_t>(prop)]->priority());
  queue_[bucket].push_back(prop);
}

void Space::notify(VarId v, ModEvent event) {
  unsigned fired = kOnDomain;
  if (event == ModEvent::kBounds || event == ModEvent::kAssign)
    fired |= kOnBounds;
  if (event == ModEvent::kAssign) fired |= kOnAssign;
  for (const Subscription& sub : subscriptions_[static_cast<std::size_t>(v)]) {
    if ((sub.mask & fired) == 0) continue;
    schedule(sub.prop);
    if (advised_[static_cast<std::size_t>(sub.prop)]) {
      propagators_[static_cast<std::size_t>(sub.prop)]->modified(*this, v,
                                                                 sub.data);
    }
  }
}

bool Space::propagate() {
  while (!failed_) {
    int prop = -1;
    for (auto& bucket : queue_) {
      if (!bucket.empty()) {
        prop = bucket.back();
        bucket.pop_back();
        break;
      }
    }
    if (prop < 0) break;  // queue drained: fixpoint
    scheduled_[static_cast<std::size_t>(prop)] = false;
    if (subsumed_[static_cast<std::size_t>(prop)]) continue;
    ++stats_.propagations;
    Propagator& propagator = *propagators_[static_cast<std::size_t>(prop)];
    PropStatus status;
#ifndef RRPLACE_DISABLE_METRICS
    if (collect_metrics_) {
      auto& bucket =
          stats_.by_kind[static_cast<std::size_t>(propagator.kind())];
      ++bucket.runs;
      const std::uint64_t changes_before = stats_.domain_changes;
      Stopwatch watch;
      status = propagator.propagate(*this);
      bucket.time_ns +=
          static_cast<std::uint64_t>(watch.elapsed().count());
      bucket.prunings += stats_.domain_changes - changes_before;
      if (status == PropStatus::kFail || failed_) ++bucket.failures;
    } else {
      status = propagator.propagate(*this);
    }
#else
    status = propagator.propagate(*this);
#endif
    if (status == PropStatus::kFail) failed_ = true;
    if (status == PropStatus::kSubsumed) {
      subsumed_[static_cast<std::size_t>(prop)] = true;
      if (decision_level() > 0) subsumed_trail_.push_back(prop);
    }
  }
  if (failed_) {
    // Drop anything still queued; it will be rescheduled as needed.
    for (auto& bucket : queue_) {
      for (int prop : bucket) scheduled_[static_cast<std::size_t>(prop)] = false;
      bucket.clear();
    }
  }
  return !failed_;
}

void Space::push() {
  RR_ASSERT(!failed_);
  level_marks_.push_back(trail_.size());
  subsumed_marks_.push_back(subsumed_trail_.size());
  for (int prop : advisors_)
    propagators_[static_cast<std::size_t>(prop)]->level_pushed(*this);
}

void Space::pop() {
  RR_ASSERT(!level_marks_.empty());
  const std::size_t mark = level_marks_.back();
  level_marks_.pop_back();
  while (trail_.size() > mark) {
    auto& [var, saved] = trail_.back();
    domains_[static_cast<std::size_t>(var)] = std::move(saved);
    domain_saved_at_[static_cast<std::size_t>(var)] = -1;
    trail_.pop_back();
  }
  const std::size_t smark = subsumed_marks_.back();
  subsumed_marks_.pop_back();
  while (subsumed_trail_.size() > smark) {
    subsumed_[static_cast<std::size_t>(subsumed_trail_.back())] = false;
    subsumed_trail_.pop_back();
  }
  // Domains are restored above; advised propagators now roll their own
  // trails back to the matching mark.
  for (int prop : advisors_)
    propagators_[static_cast<std::size_t>(prop)]->level_popped(*this);
  failed_ = false;
}

}  // namespace rr::cp
