// Branching heuristics.
//
// The engine uses binary branching: a Choice (var, value) creates a left
// child `var == value` and a right child `var != value`. A brancher only
// proposes the next choice; the engine owns the tree walk.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cp/space.hpp"
#include "util/rng.hpp"

namespace rr::cp {

struct Choice {
  VarId var = kNoVar;
  int value = 0;
};

class Brancher {
 public:
  virtual ~Brancher() = default;
  /// Next decision, or nullopt when all watched variables are assigned
  /// (i.e. the current node is a solution of this brancher's scope).
  virtual std::optional<Choice> choose(const Space& space) = 0;
};

enum class VarSelect {
  kInputOrder,     // first unassigned in the given order
  kFirstFail,      // smallest domain
  kLargestDomain,  // largest domain (anti-first-fail, for portfolios)
  kRandom,         // uniformly random unassigned variable
};

enum class ValSelect {
  kMin,     // smallest value
  kMax,     // largest value
  kRandom,  // uniformly random value from the domain
};

/// Standard variable/value strategy over a fixed variable list.
class BasicBrancher final : public Brancher {
 public:
  BasicBrancher(std::vector<VarId> vars, VarSelect var_select,
                ValSelect val_select, std::uint64_t seed = 1);

  std::optional<Choice> choose(const Space& space) override;

 private:
  std::vector<VarId> vars_;
  VarSelect var_select_;
  ValSelect val_select_;
  Rng rng_;
};

/// Brancher driven by a callback — the placer uses this to implement its
/// bottom-left value ordering over placement tables.
class FunctionBrancher final : public Brancher {
 public:
  using Fn = std::function<std::optional<Choice>(const Space&)>;
  explicit FunctionBrancher(Fn fn) : fn_(std::move(fn)) {}

  std::optional<Choice> choose(const Space& space) override {
    return fn_(space);
  }

 private:
  Fn fn_;
};

}  // namespace rr::cp
