#include "cp/brancher.hpp"

#include <limits>

namespace rr::cp {

BasicBrancher::BasicBrancher(std::vector<VarId> vars, VarSelect var_select,
                             ValSelect val_select, std::uint64_t seed)
    : vars_(std::move(vars)),
      var_select_(var_select),
      val_select_(val_select),
      rng_(seed) {}

std::optional<Choice> BasicBrancher::choose(const Space& space) {
  VarId chosen = kNoVar;
  long best_size = 0;
  int unassigned_seen = 0;
  for (VarId v : vars_) {
    if (space.assigned(v)) continue;
    ++unassigned_seen;
    const long size = space.dom(v).size();
    switch (var_select_) {
      case VarSelect::kInputOrder:
        if (chosen == kNoVar) chosen = v;
        break;
      case VarSelect::kFirstFail:
        if (chosen == kNoVar || size < best_size) {
          chosen = v;
          best_size = size;
        }
        break;
      case VarSelect::kLargestDomain:
        if (chosen == kNoVar || size > best_size) {
          chosen = v;
          best_size = size;
        }
        break;
      case VarSelect::kRandom:
        // Reservoir sampling over unassigned variables.
        if (rng_.bounded(static_cast<std::uint64_t>(unassigned_seen)) == 0)
          chosen = v;
        break;
    }
    if (var_select_ == VarSelect::kInputOrder && chosen != kNoVar) break;
  }
  if (chosen == kNoVar) return std::nullopt;

  const Domain& dom = space.dom(chosen);
  int value = dom.min();
  switch (val_select_) {
    case ValSelect::kMin: value = dom.min(); break;
    case ValSelect::kMax: value = dom.max(); break;
    case ValSelect::kRandom:
      // Pick the k-th domain value without materializing the domain.
      value = dom.nth_value(static_cast<long>(
          rng_.bounded(static_cast<std::uint64_t>(dom.size()))));
      break;
  }
  return Choice{chosen, value};
}

}  // namespace rr::cp
