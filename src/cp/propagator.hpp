// Propagator interface.
//
// A propagator narrows variable domains toward consistency with one
// constraint. Propagators are owned by the Space, subscribed to variables
// with an event mask, and scheduled through a priority queue until fixpoint.
//
// Backtracking contract: by default propagators must be *stateless across
// search*, or keep only state they can cheaply recompute in propagate();
// the Space does not snapshot propagator internals. Subsumption flags are
// trailed by the Space, so returning kSubsumed is safe under backtracking.
//
// Advised propagators (advised() returning true) opt into richer plumbing
// for *incremental* state: the Space tells them which subscribed variable
// changed (modified()) and when decision levels open and close
// (level_pushed()/level_popped()), so they can keep their own trail in
// lockstep with the Space's and restore internal state exactly where the
// Space restores domains.
#pragma once

#include "cp/types.hpp"

namespace rr::cp {

class Space;

class Propagator {
 public:
  explicit Propagator(PropPriority priority = PropPriority::kLinear,
                      PropKind kind = PropKind::kOther)
      : priority_(priority), kind_(kind) {}
  virtual ~Propagator() = default;

  Propagator(const Propagator&) = delete;
  Propagator& operator=(const Propagator&) = delete;

  /// Subscribe to variables. Called once, immediately after the Space takes
  /// ownership; `self` is the id to pass to Space::subscribe.
  virtual void attach(Space& space, int self) = 0;

  /// Narrow domains. Must be monotone (only remove values) and idempotent
  /// enough that re-running at fixpoint is a no-op.
  virtual PropStatus propagate(Space& space) = 0;

  /// Opt into modification events and level notifications. Sampled once at
  /// post() time; advised propagators receive modified() and the level
  /// hooks below for the Space's whole lifetime.
  [[nodiscard]] virtual bool advised() const noexcept { return false; }

  /// Advisor hook: subscribed variable `var` changed (`data` is the value
  /// passed to Space::subscribe). Called mid-mutation, in addition to
  /// scheduling — record the event (e.g. into a dirty set drained at
  /// propagate() entry); do NOT modify domains from here.
  virtual void modified(Space& /*space*/, VarId /*var*/, int /*data*/) {}

  /// Level hooks, called from Space::push()/pop() so trailed internal state
  /// can mark and restore in lockstep with the domain trail. level_popped()
  /// runs after the Space has restored domains.
  virtual void level_pushed(Space& /*space*/) {}
  virtual void level_popped(Space& /*space*/) {}

  [[nodiscard]] PropPriority priority() const noexcept { return priority_; }

  /// Metrics bucket this propagator's runs are accounted under.
  [[nodiscard]] PropKind kind() const noexcept { return kind_; }

 private:
  PropPriority priority_;
  PropKind kind_;
};

}  // namespace rr::cp
