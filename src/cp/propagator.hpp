// Propagator interface.
//
// A propagator narrows variable domains toward consistency with one
// constraint. Propagators are owned by the Space, subscribed to variables
// with an event mask, and scheduled through a priority queue until fixpoint.
//
// Backtracking contract: propagators must be *stateless across search*, or
// keep only state they can cheaply recompute in propagate(); the Space does
// not snapshot propagator internals. Subsumption flags are trailed by the
// Space, so returning kSubsumed is safe under backtracking.
#pragma once

#include "cp/types.hpp"

namespace rr::cp {

class Space;

class Propagator {
 public:
  explicit Propagator(PropPriority priority = PropPriority::kLinear,
                      PropKind kind = PropKind::kOther)
      : priority_(priority), kind_(kind) {}
  virtual ~Propagator() = default;

  Propagator(const Propagator&) = delete;
  Propagator& operator=(const Propagator&) = delete;

  /// Subscribe to variables. Called once, immediately after the Space takes
  /// ownership; `self` is the id to pass to Space::subscribe.
  virtual void attach(Space& space, int self) = 0;

  /// Narrow domains. Must be monotone (only remove values) and idempotent
  /// enough that re-running at fixpoint is a no-op.
  virtual PropStatus propagate(Space& space) = 0;

  [[nodiscard]] PropPriority priority() const noexcept { return priority_; }

  /// Metrics bucket this propagator's runs are accounted under.
  [[nodiscard]] PropKind kind() const noexcept { return kind_; }

 private:
  PropPriority priority_;
  PropKind kind_;
};

}  // namespace rr::cp
