// Constraint posting functions.
//
// Each post_* builds one or more propagators on the given Space. Posting
// never runs propagation itself; call Space::propagate() (the search engine
// does this at every node, including the root).
#pragma once

#include <span>
#include <vector>

#include "cp/space.hpp"

namespace rr::cp {

enum class RelOp { kEq, kNeq, kLeq, kGeq, kLt, kGt };

/// x `op` c — applied immediately to the domain (no propagator needed).
void post_rel_const(Space& space, VarId x, RelOp op, int c);

/// x `op` y + offset — bounds-consistent binary relation.
void post_rel(Space& space, VarId x, RelOp op, VarId y, int offset = 0);

/// sum(coeffs[i] * vars[i]) `op` rhs — bounds consistency.
/// op must be kEq, kLeq or kGeq.
void post_linear(Space& space, std::span<const int> coeffs,
                 std::span<const VarId> vars, RelOp op, int rhs);

/// z == max(xs) — bounds consistency. xs must be non-empty.
void post_max(Space& space, VarId z, std::span<const VarId> xs);

/// z == min(xs) — bounds consistency. xs must be non-empty.
void post_min(Space& space, VarId z, std::span<const VarId> xs);

/// Options for post_element. `compact = false` selects the original
/// scanning propagator, kept as a differential-testing oracle (same
/// pattern as geost::NonOverlapOptions::incremental).
struct ElementOptions {
  bool compact = true;
};

/// result == table[index] — domain-consistent element constraint.
/// Index values outside [0, table.size()) are pruned immediately.
/// Returns the propagator id (usable with Space::schedule).
int post_element(Space& space, std::span<const int> table, VarId index,
                 VarId result, ElementOptions options = {});

/// All variables take pairwise distinct values (forward-checking strength).
void post_all_different(Space& space, std::span<const VarId> vars);

/// |{i : vars[i] == value}| `op` n, for op in {kEq, kLeq, kGeq}.
void post_count(Space& space, std::span<const VarId> vars, int value,
                RelOp op, int n);

/// Reification: b <-> (x `op` c), where b is a 0/1 variable.
/// b is clipped into [0, 1] at post time.
void post_rel_reified(Space& space, VarId x, RelOp op, int c, VarId b);

/// Options for post_table. `compact = false` selects the original
/// scanning propagator, kept as a differential-testing oracle.
struct TableOptions {
  bool compact = true;
};

/// Positive table constraint: the tuple (vars[0], ..., vars[n-1]) must
/// equal one of `tuples` (each of arity vars.size()). Generalized arc
/// consistency; the default compact-table propagator keeps the live-tuple
/// set in a reversible sparse bitset and updates it from domain deltas.
/// Returns the propagator id (usable with Space::schedule).
int post_table(Space& space, std::span<const VarId> vars,
               std::vector<std::vector<int>> tuples, TableOptions options = {});

}  // namespace rr::cp
