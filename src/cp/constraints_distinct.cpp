#include <memory>
#include <vector>

#include "cp/constraints.hpp"

namespace rr::cp {
namespace {

/// all_different with forward-checking strength: once a variable is
/// assigned, its value is removed everywhere else. Sufficient for the small
/// symmetric-breaking uses in the placer and keeps propagation cheap.
class Distinct final : public Propagator {
 public:
  explicit Distinct(std::vector<VarId> vars)
      : Propagator(PropPriority::kLinear, PropKind::kDistinct),
        vars_(std::move(vars)) {}

  void attach(Space& space, int self) override {
    for (VarId v : vars_) space.subscribe(v, self, kOnAssign);
  }

  PropStatus propagate(Space& space) override {
    // Repeat until no new assignments appear (assignment cascades).
    bool again = true;
    while (again) {
      again = false;
      for (std::size_t i = 0; i < vars_.size(); ++i) {
        if (!space.assigned(vars_[i])) continue;
        const int value = space.value(vars_[i]);
        for (std::size_t j = 0; j < vars_.size(); ++j) {
          if (j == i) continue;
          if (space.assigned(vars_[j])) {
            if (space.value(vars_[j]) == value) return PropStatus::kFail;
            continue;
          }
          const ModEvent ev = space.remove(vars_[j], value);
          if (ev == ModEvent::kFail) return PropStatus::kFail;
          if (ev == ModEvent::kAssign) again = true;
        }
      }
    }
    return PropStatus::kFix;
  }

 private:
  std::vector<VarId> vars_;
};

}  // namespace

void post_all_different(Space& space, std::span<const VarId> vars) {
  if (vars.size() < 2) return;
  space.post(
      std::make_unique<Distinct>(std::vector<VarId>(vars.begin(), vars.end())));
}

}  // namespace rr::cp
