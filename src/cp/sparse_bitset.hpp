// Reversible sparse bitset — the backbone of compact-table propagation.
//
// A fixed-capacity bitset (one bit per tuple / placement index) whose words
// are restored on backtracking through the same advisor trail contract the
// incremental geost kernel uses: the owning propagator forwards
// level_pushed()/level_popped() to push_level()/pop_level(), so the bitset
// rolls back exactly where the Space restores domains.
//
// Two ideas make intersection tests cheap at depth:
//   - sparsity: word indices with a (possibly) nonzero value live in the
//     prefix active_[0..limit_); a word that becomes zero is swapped out of
//     the prefix. All word-parallel operations and emptiness tests touch
//     only active words, so work shrinks with the live set.
//   - trailing: the first time a word changes at a decision level its old
//     value is recorded once (per-word level stamps); pop_level() replays
//     the records and restores limit_. Deactivations are LIFO per level, so
//     restoring limit_ reactivates exactly the words zeroed at that level.
//
// Changes made at the root (before any push_level) are permanent, matching
// Space's root-change semantics.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace rr::cp {

class ReversibleSparseBitSet {
 public:
  ReversibleSparseBitSet() = default;

  /// Capacity in words for `bits` bits.
  [[nodiscard]] static int words_for(long bits) noexcept {
    return static_cast<int>((bits + 63) / 64);
  }

  /// (Re)initialize with `bits` bits, all set. Clears any trail.
  void init_full(long bits);

  /// (Re)initialize from a mask of ceil(bits/64) words. Clears any trail.
  void init_from_mask(std::span<const std::uint64_t> mask, long bits);

  [[nodiscard]] bool empty() const noexcept { return limit_ == 0; }
  [[nodiscard]] long num_bits() const noexcept { return bits_; }
  [[nodiscard]] int num_words() const noexcept {
    return static_cast<int>(words_.size());
  }
  /// Number of set bits (popcount over active words).
  [[nodiscard]] long count() const noexcept;

  [[nodiscard]] bool test(long bit) const noexcept {
    RR_ASSERT(bit >= 0 && bit < bits_);
    return (words_[static_cast<std::size_t>(bit >> 6)] >>
            (static_cast<unsigned>(bit) & 63u)) &
           1u;
  }

  /// The full word array. Deactivated words hold zero, so this span *is*
  /// the current set — callers may hand it to Domain::keep_masked or AND it
  /// against support masks directly.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  /// Monotonically increasing stamp, bumped whenever any word changes
  /// (including restores). Lets propagators skip their check phase when a
  /// run's delta turned out to be a no-op.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  // --- Word-parallel mutators (touch active words only) -------------------
  /// this &= mask.
  void and_mask(std::span<const std::uint64_t> mask);
  /// this &= ~mask.
  void and_not_mask(std::span<const std::uint64_t> mask);
  void clear_bit(long bit);

  // --- Queries -------------------------------------------------------------
  /// True iff (this & mask) is nonempty. `residue` caches the witness word
  /// index across calls (last-support residue): it is probed first and
  /// updated on success, turning steady-state support checks into one AND.
  [[nodiscard]] bool intersects(std::span<const std::uint64_t> mask,
                                int& residue) const noexcept;

  /// Visit every set bit in increasing order (diagnostics / extraction).
  template <typename F>
  void for_each_bit(F&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int b = std::countr_zero(word);
        fn(static_cast<long>(w) * 64 + b);
        word &= word - 1;
      }
    }
  }

  // --- Trail integration (advisor contract) --------------------------------
  /// Call from the owning propagator's level_pushed().
  void push_level();
  /// Call from the owning propagator's level_popped(). Restores all words
  /// changed at the dying level and the active-word limit.
  void pop_level();

 private:
  void reset_trail();
  /// Trail word w's old value once per level; root changes are permanent.
  void save_word(int w) {
    const int level = static_cast<int>(marks_.size());
    if (level == 0) return;
    auto& stamp = saved_at_[static_cast<std::size_t>(w)];
    if (stamp == level) return;
    trail_.push_back(TrailEntry{w, words_[static_cast<std::size_t>(w)]});
    stamp = level;
  }
  void deactivate(int pos);

  struct TrailEntry {
    int word;
    std::uint64_t value;
  };
  struct LevelMark {
    std::size_t trail_size;
    int limit;
  };

  std::vector<std::uint64_t> words_;
  std::vector<int> active_;    // word indices; nonzero words in [0, limit_)
  std::vector<int> where_;     // position of word w in active_
  std::vector<int> saved_at_;  // level at which word w was last trailed
  int limit_ = 0;
  long bits_ = 0;
  std::uint64_t version_ = 0;

  std::vector<TrailEntry> trail_;
  std::vector<LevelMark> marks_;
};

}  // namespace rr::cp
