// Parallel portfolio minimization.
//
// Workers run independent branch-and-bound searches over copies of the same
// model (typically with different branching heuristics or random seeds) and
// share the incumbent objective through one atomic, so any worker's
// improvement immediately prunes all others. One worker exhausting its tree
// proves optimality for the whole portfolio, because every worker explores
// the full search space under the shared cut.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cp/brancher.hpp"
#include "cp/search.hpp"

namespace rr::cp {

/// A self-contained model instance for one worker.
struct PortfolioModel {
  std::unique_ptr<Space> space;
  std::unique_ptr<Brancher> brancher;
  VarId objective = kNoVar;
  /// Variables whose values are reported back for the best solution.
  std::vector<VarId> report;
};

/// Builds the model for worker `index`. Thread safety is NOT required:
/// minimize_portfolio invokes the factory sequentially, for every worker,
/// on the calling thread, before any worker thread starts — factories may
/// freely share mutable state (typically one problem description).
using PortfolioFactory = std::function<PortfolioModel(int index)>;

/// One improving solution found by some worker, stamped with the wall time
/// since the portfolio launched — the per-worker incumbent timeline.
struct IncumbentEvent {
  int worker = -1;
  double seconds = 0.0;
  long objective = 0;
};

struct PortfolioResult {
  bool found = false;
  long objective = kNoBound;
  std::vector<int> assignment;  // report-var values at the best solution
  bool complete = false;        // some worker proved optimality
  int winner = -1;              // worker that produced the best solution
  SearchStats total;            // summed across workers
  SpaceStats space;             // propagation counters summed across workers
  /// Every solution any worker reported, in discovery order. Objectives are
  /// not globally monotone: a worker only reports improvements over the
  /// *shared* bound it observed when its search began propagating.
  std::vector<IncumbentEvent> incumbents;
};

/// Run `workers` B&B searches in parallel (sequentially when workers == 1).
PortfolioResult minimize_portfolio(const PortfolioFactory& factory,
                                   int workers, const SearchLimits& limits);

}  // namespace rr::cp
