// Parallel portfolio minimization.
//
// Workers run independent branch-and-bound searches over copies of the same
// model (typically with different branching heuristics or random seeds) and
// share the incumbent objective through one atomic, so any worker's
// improvement immediately prunes all others. One worker exhausting its tree
// proves optimality for the whole portfolio, because every worker explores
// the full search space under the shared cut.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cp/brancher.hpp"
#include "cp/search.hpp"

namespace rr::cp {

/// A self-contained model instance for one worker.
struct PortfolioModel {
  std::unique_ptr<Space> space;
  std::unique_ptr<Brancher> brancher;
  VarId objective = kNoVar;
  /// Variables whose values are reported back for the best solution.
  std::vector<VarId> report;
};

/// Builds the model for worker `index`; must be safe to call concurrently
/// is NOT required — all models are built sequentially before threads start.
using PortfolioFactory = std::function<PortfolioModel(int index)>;

struct PortfolioResult {
  bool found = false;
  long objective = kNoBound;
  std::vector<int> assignment;  // report-var values at the best solution
  bool complete = false;        // some worker proved optimality
  int winner = -1;              // worker that produced the best solution
  SearchStats total;            // summed across workers
};

/// Run `workers` B&B searches in parallel (sequentially when workers == 1).
PortfolioResult minimize_portfolio(const PortfolioFactory& factory,
                                   int workers, const SearchLimits& limits);

}  // namespace rr::cp
