#include "cp/domain.hpp"

#include <algorithm>
#include <sstream>

#include "util/simd/simd.hpp"

namespace rr::cp {
namespace {

// Fragmentation heuristic: pack into word blocks when the bitset needs no
// more words than twice the range count (a word is half the size of a
// Range, so this is the memory break-even point — fewer bytes to copy onto
// the trail) and the span stays under a hard cap, so huge dense coordinate
// intervals never pack.
constexpr std::size_t kPackMinRanges = 16;
constexpr long kPackMaxWords = 4096;  // 256k-value span cap

long words_for(long span) noexcept { return (span + 63) / 64; }

/// Bits of `mask` (anchored at `base`) covering values [start, start+64).
std::uint64_t gather_window(int base, std::span<const std::uint64_t> mask,
                            long start) noexcept {
  const long off = start - base;  // signed bit offset into mask
  const long total = static_cast<long>(mask.size()) * 64;
  if (off <= -64 || off >= total) return 0;
  const long w = off >= 0 ? off / 64 : -((63 - off) / 64);  // floor(off/64)
  const int s = static_cast<int>(off - w * 64);
  const auto word_at = [&](long i) -> std::uint64_t {
    return i >= 0 && i < static_cast<long>(mask.size())
               ? mask[static_cast<std::size_t>(i)]
               : 0;
  };
  if (s == 0) return word_at(w);
  return (word_at(w) >> s) | (word_at(w + 1) << (64 - s));
}

/// Set bits [b0, b1] (inclusive) in `out`.
void set_bit_run(std::span<std::uint64_t> out, long b0, long b1) noexcept {
  const std::size_t w0 = static_cast<std::size_t>(b0 >> 6);
  const std::size_t w1 = static_cast<std::size_t>(b1 >> 6);
  const std::uint64_t lo_mask = ~std::uint64_t{0} << (b0 & 63);
  const std::uint64_t hi_mask = ~std::uint64_t{0} >> (63 - (b1 & 63));
  if (w0 == w1) {
    out[w0] |= lo_mask & hi_mask;
    return;
  }
  out[w0] |= lo_mask;
  for (std::size_t w = w0 + 1; w < w1; ++w) out[w] = ~std::uint64_t{0};
  out[w1] |= hi_mask;
}

/// Smallest set-bit index >= b in `mask`, or -1.
long next_set_bit(std::span<const std::uint64_t> mask, long b) noexcept {
  const long total = static_cast<long>(mask.size()) * 64;
  while (b < total) {
    const std::size_t w = static_cast<std::size_t>(b >> 6);
    const std::uint64_t word = mask[w] & (~std::uint64_t{0} << (b & 63));
    if (word != 0)
      return static_cast<long>(w) * 64 + std::countr_zero(word);
    b = (static_cast<long>(w) + 1) * 64;
  }
  return -1;
}

/// Smallest clear-bit index >= b in `mask` (mask.size()*64 if none).
long next_clear_bit(std::span<const std::uint64_t> mask, long b) noexcept {
  const long total = static_cast<long>(mask.size()) * 64;
  while (b < total) {
    const std::size_t w = static_cast<std::size_t>(b >> 6);
    const std::uint64_t word = ~mask[w] & (~std::uint64_t{0} << (b & 63));
    if (word != 0)
      return static_cast<long>(w) * 64 + std::countr_zero(word);
    b = (static_cast<long>(w) + 1) * 64;
  }
  return total;
}

}  // namespace

Domain::Domain(int lo, int hi) {
  if (lo <= hi) {
    ranges_.push_back(Range{lo, hi});
    size_ = static_cast<long>(hi) - lo + 1;
  }
}

Domain Domain::from_values(std::vector<int> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Domain d;
  for (int v : values) {
    if (!d.ranges_.empty() && d.ranges_.back().hi + 1 == v) {
      d.ranges_.back().hi = v;
    } else {
      d.ranges_.push_back(Range{v, v});
    }
  }
  d.size_ = static_cast<long>(values.size());
  d.maybe_pack();
  return d;
}

void Domain::recount() noexcept {
  size_ = 0;
  for (const Range& r : ranges_) size_ += static_cast<long>(r.hi) - r.lo + 1;
}

void Domain::clear_all() noexcept {
  ranges_.clear();
  words_.clear();
  size_ = 0;
}

void Domain::maybe_pack() {
  if (is_words() || ranges_.size() < kPackMinRanges) return;
  const long span =
      static_cast<long>(ranges_.back().hi) - ranges_.front().lo + 1;
  const long nw = words_for(span);
  if (nw > kPackMaxWords || nw > 2 * static_cast<long>(ranges_.size()))
    return;
  pack_to_words();
}

void Domain::pack_to_words() {
  base_ = ranges_.front().lo;
  min_ = base_;
  max_ = ranges_.back().hi;
  words_.assign(
      static_cast<std::size_t>(words_for(static_cast<long>(max_) - base_ + 1)),
      0);
  for (const Range& r : ranges_)
    set_bit_run(words_, r.lo - static_cast<long>(base_),
                r.hi - static_cast<long>(base_));
  ranges_.clear();
  // size_ is unchanged by a representation switch.
}

void Domain::rescan_words() noexcept {
  long count = 0;
  long first = -1;
  long last = -1;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t word = words_[w];
    if (word == 0) continue;
    count += std::popcount(word);
    if (first < 0)
      first = static_cast<long>(w) * 64 + std::countr_zero(word);
    last = static_cast<long>(w) * 64 + 63 - std::countl_zero(word);
  }
  if (count == 0) {
    clear_all();
    return;
  }
  size_ = count;
  min_ = base_ + static_cast<int>(first);
  max_ = base_ + static_cast<int>(last);
}

long Domain::clear_bits(int lo, int hi) noexcept {
  const long total = static_cast<long>(words_.size()) * 64;
  const long b0 = std::max<long>(static_cast<long>(lo) - base_, 0);
  const long b1 = std::min<long>(static_cast<long>(hi) - base_, total - 1);
  if (b0 > b1) return 0;
  const std::size_t w0 = static_cast<std::size_t>(b0 >> 6);
  const std::size_t w1 = static_cast<std::size_t>(b1 >> 6);
  long cleared = 0;
  for (std::size_t w = w0; w <= w1; ++w) {
    std::uint64_t mask = ~std::uint64_t{0};
    if (w == w0) mask &= ~std::uint64_t{0} << (b0 & 63);
    if (w == w1) mask &= ~std::uint64_t{0} >> (63 - (b1 & 63));
    cleared += std::popcount(words_[w] & mask);
    words_[w] &= ~mask;
  }
  return cleared;
}

bool Domain::contains(int v) const noexcept {
  if (empty()) return false;
  if (is_words()) {
    if (v < min_ || v > max_) return false;
    const long b = static_cast<long>(v) - base_;
    return (words_[static_cast<std::size_t>(b >> 6)] >>
            (static_cast<unsigned>(b) & 63u)) &
           1u;
  }
  // Binary search for the first range with hi >= v.
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), v,
      [](const Range& r, int value) { return r.hi < value; });
  return it != ranges_.end() && it->lo <= v;
}

bool Domain::next_geq(int v, int& out) const noexcept {
  if (empty()) return false;
  if (is_words()) {
    if (v <= min_) {
      out = min_;
      return true;
    }
    if (v > max_) return false;
    const long b = next_set_bit(words_, static_cast<long>(v) - base_);
    RR_ASSERT(b >= 0);  // max_ >= v guarantees a set bit
    out = base_ + static_cast<int>(b);
    return true;
  }
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), v,
      [](const Range& r, int value) { return r.hi < value; });
  if (it == ranges_.end()) return false;
  out = std::max(v, it->lo);
  return true;
}

int Domain::nth_value(long k) const noexcept {
  RR_ASSERT(k >= 0 && k < size_);
  if (is_words()) {
    for (std::size_t w = 0;; ++w) {
      std::uint64_t word = words_[w];
      const int pc = std::popcount(word);
      if (k >= pc) {
        k -= pc;
        continue;
      }
      while (k-- > 0) word &= word - 1;  // drop the k lowest set bits
      return base_ + static_cast<int>(w) * 64 + std::countr_zero(word);
    }
  }
  for (const Range& r : ranges_) {
    const long len = static_cast<long>(r.hi) - r.lo + 1;
    if (k < len) return r.lo + static_cast<int>(k);
    k -= len;
  }
  RR_ASSERT(false);
  return min();
}

void Domain::fill_words(int base,
                        std::span<std::uint64_t> out) const noexcept {
  std::fill(out.begin(), out.end(), 0);
  if (empty()) return;
  if (is_words()) {
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = gather_window(base_, words_,
                             static_cast<long>(base) +
                                 static_cast<long>(i) * 64);
    return;
  }
  const long window_hi =
      static_cast<long>(base) + static_cast<long>(out.size()) * 64 - 1;
  for (const Range& r : ranges_) {
    const long lo = std::max<long>(r.lo, base);
    const long hi = std::min<long>(r.hi, window_hi);
    if (lo > hi) continue;
    set_bit_run(out, lo - base, hi - base);
  }
}

std::vector<int> Domain::values() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(size_));
  for_each([&](int v) { out.push_back(v); });
  return out;
}

bool Domain::remove_below(int v) {
  if (empty() || v <= min()) return false;
  if (is_words()) {
    if (clear_bits(min_, v - 1) == 0) return false;
    rescan_words();
    return true;
  }
  auto it = ranges_.begin();
  while (it != ranges_.end() && it->hi < v) ++it;
  ranges_.erase(ranges_.begin(), it);
  if (!ranges_.empty() && ranges_.front().lo < v) ranges_.front().lo = v;
  recount();
  return true;
}

bool Domain::remove_above(int v) {
  if (empty() || v >= max()) return false;
  if (is_words()) {
    if (clear_bits(v + 1, max_) == 0) return false;
    rescan_words();
    return true;
  }
  auto it = ranges_.end();
  while (it != ranges_.begin() && std::prev(it)->lo > v) --it;
  ranges_.erase(it, ranges_.end());
  if (!ranges_.empty() && ranges_.back().hi > v) ranges_.back().hi = v;
  recount();
  return true;
}

bool Domain::remove(int v) { return remove_range(v, v); }

bool Domain::remove_range(int lo, int hi) {
  if (empty() || lo > hi || hi < min() || lo > max()) return false;
  if (is_words()) {
    if (clear_bits(lo, hi) == 0) return false;
    rescan_words();
    return true;
  }
  std::vector<Range> out;
  out.reserve(ranges_.size() + 1);
  bool changed = false;
  for (const Range& r : ranges_) {
    if (r.hi < lo || r.lo > hi) {
      out.push_back(r);
      continue;
    }
    changed = true;
    if (r.lo < lo) out.push_back(Range{r.lo, lo - 1});
    if (r.hi > hi) out.push_back(Range{hi + 1, r.hi});
  }
  if (!changed) return false;
  ranges_ = std::move(out);
  recount();
  maybe_pack();
  return true;
}

bool Domain::remove_values_sorted(std::span<const int> values) {
  if (empty() || values.empty()) return false;
  if (is_words()) {
    long cleared = 0;
    for (int v : values) {
      if (v < min_) continue;
      if (v > max_) break;
      const long b = static_cast<long>(v) - base_;
      std::uint64_t& word = words_[static_cast<std::size_t>(b >> 6)];
      const std::uint64_t mask = std::uint64_t{1}
                                 << (static_cast<unsigned>(b) & 63u);
      if ((word & mask) != 0) {
        word &= ~mask;
        ++cleared;
      }
    }
    if (cleared == 0) return false;
    rescan_words();
    return true;
  }
  std::vector<Range> out;
  out.reserve(ranges_.size() + values.size());
  std::size_t vi = 0;
  bool changed = false;
  for (const Range& r : ranges_) {
    int lo = r.lo;
    while (vi < values.size() && values[vi] < lo) ++vi;
    std::size_t vj = vi;
    while (vj < values.size() && values[vj] <= r.hi) {
      const int v = values[vj];
      if (v > lo) out.push_back(Range{lo, v - 1});
      lo = v + 1;
      changed = true;
      ++vj;
    }
    if (lo <= r.hi) out.push_back(Range{lo, r.hi});
    vi = vj;
  }
  if (!changed) return false;
  ranges_ = std::move(out);
  recount();
  maybe_pack();
  return true;
}

bool Domain::intersect(const Domain& other) {
  if (empty()) return false;
  if (other.empty()) {
    clear_all();
    return true;
  }
  if (!is_words() && !other.is_words()) {
    std::vector<Range> out;
    out.reserve(std::max(ranges_.size(), other.ranges_.size()));
    std::size_t i = 0, j = 0;
    while (i < ranges_.size() && j < other.ranges_.size()) {
      const Range& a = ranges_[i];
      const Range& b = other.ranges_[j];
      const int lo = std::max(a.lo, b.lo);
      const int hi = std::min(a.hi, b.hi);
      if (lo <= hi) out.push_back(Range{lo, hi});
      if (a.hi < b.hi) ++i;
      else ++j;
    }
    if (out == ranges_) return false;
    ranges_ = std::move(out);
    recount();
    maybe_pack();
    return true;
  }
  // Word path: at least one side is word-represented, so the intersection
  // window is bounded by the pack cap. Build both sides as word blocks over
  // the window and AND them; an unchanged cardinality means an unchanged
  // set (intersection only removes values).
  const int lo = std::max(min(), other.min());
  const int hi = std::min(max(), other.max());
  if (lo > hi) {
    clear_all();
    return true;
  }
  const std::size_t nw = static_cast<std::size_t>(
      words_for(static_cast<long>(hi) - lo + 1));
  thread_local std::vector<std::uint64_t> mine;
  thread_local std::vector<std::uint64_t> theirs;
  mine.resize(nw);
  theirs.resize(nw);
  fill_words(lo, mine);
  other.fill_words(lo, theirs);
  const long new_size = static_cast<long>(simd::and_inplace_popcount(
      std::span<std::uint64_t>(mine.data(), nw),
      std::span<const std::uint64_t>(theirs.data(), nw)));
  if (new_size == size_) return false;
  if (new_size == 0) {
    clear_all();
    return true;
  }
  ranges_.clear();
  words_.assign(mine.begin(), mine.end());
  base_ = lo;
  rescan_words();
  return true;
}

bool Domain::keep_masked(int base, std::span<const std::uint64_t> mask) {
  if (empty()) return false;
  if (mask.empty()) {
    clear_all();
    return true;
  }
  if (is_words()) {
    // words_[w] &= window(mask, (base_ - base) + 64*w): one windowed
    // erosion sweep over the block.
    const long new_size = static_cast<long>(simd::shift_and_into(
        words_, mask, static_cast<long>(base_) - static_cast<long>(base)));
    if (new_size == size_) return false;  // removal-only: count pins the set
    rescan_words();
    return true;
  }
  std::vector<Range> out;
  out.reserve(ranges_.size());
  long new_size = 0;
  const long window_hi =
      static_cast<long>(base) + static_cast<long>(mask.size()) * 64 - 1;
  for (const Range& r : ranges_) {
    const long lo = std::max<long>(r.lo, base);
    const long hi = std::min<long>(r.hi, window_hi);
    long b = lo - base;
    const long b_hi = hi - base;
    while (b <= b_hi) {
      const long s = next_set_bit(mask, b);
      if (s < 0 || s > b_hi) break;
      const long e = std::min(next_clear_bit(mask, s) - 1, b_hi);
      out.push_back(Range{static_cast<int>(base + s),
                          static_cast<int>(base + e)});
      new_size += e - s + 1;
      b = e + 2;  // bit e+1 is clear (or past the range): skip it
    }
  }
  if (new_size == size_) return false;
  ranges_ = std::move(out);
  size_ = new_size;
  maybe_pack();
  return true;
}

bool Domain::assign_value(int v) {
  if (assigned() && value() == v) return false;
  if (!contains(v)) {
    clear_all();
    return true;
  }
  clear_all();
  ranges_.assign(1, Range{v, v});
  size_ = 1;
  return true;
}

bool Domain::operator==(const Domain& other) const noexcept {
  if (size_ != other.size_) return false;
  if (size_ == 0) return true;
  if (!is_words() && !other.is_words()) return ranges_ == other.ranges_;
  if (min() != other.min() || max() != other.max()) return false;
  // Mixed or word representations: compare maximal value runs.
  struct Cursor {
    const Domain& d;
    std::size_t ri = 0;
    long bit = 0;
    bool next(Range& out) {
      if (!d.is_words()) {
        if (ri >= d.ranges_.size()) return false;
        out = d.ranges_[ri++];
        return true;
      }
      const long start = next_set_bit(d.words_, bit);
      if (start < 0) return false;
      const long end = next_clear_bit(d.words_, start) - 1;
      out = Range{d.base_ + static_cast<int>(start),
                  d.base_ + static_cast<int>(end)};
      bit = end + 1;
      return true;
    }
  };
  Cursor a{*this};
  Cursor b{other};
  Range ra{};
  Range rb{};
  while (true) {
    const bool has_a = a.next(ra);
    const bool has_b = b.next(rb);
    if (has_a != has_b) return false;
    if (!has_a) return true;
    if (!(ra == rb)) return false;
  }
}

std::string Domain::to_string() const {
  std::ostringstream os;
  os << '{';
  bool open = false;
  bool first = true;
  int run_lo = 0, run_hi = 0;
  const auto emit = [&] {
    if (!first) os << ", ";
    first = false;
    if (run_lo == run_hi) os << run_lo;
    else os << run_lo << ".." << run_hi;
  };
  for_each([&](int v) {
    if (!open) {
      run_lo = run_hi = v;
      open = true;
    } else if (v == run_hi + 1) {
      run_hi = v;
    } else {
      emit();
      run_lo = run_hi = v;
    }
  });
  if (open) emit();
  os << '}';
  return os.str();
}

}  // namespace rr::cp
