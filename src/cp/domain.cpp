#include "cp/domain.hpp"

#include <algorithm>
#include <sstream>

namespace rr::cp {

Domain::Domain(int lo, int hi) {
  if (lo <= hi) {
    ranges_.push_back(Range{lo, hi});
    size_ = static_cast<long>(hi) - lo + 1;
  }
}

Domain Domain::from_values(std::vector<int> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Domain d;
  for (int v : values) {
    if (!d.ranges_.empty() && d.ranges_.back().hi + 1 == v) {
      d.ranges_.back().hi = v;
    } else {
      d.ranges_.push_back(Range{v, v});
    }
  }
  d.size_ = static_cast<long>(values.size());
  return d;
}

void Domain::recount() noexcept {
  size_ = 0;
  for (const Range& r : ranges_) size_ += static_cast<long>(r.hi) - r.lo + 1;
}

bool Domain::contains(int v) const noexcept {
  // Binary search for the first range with hi >= v.
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), v,
      [](const Range& r, int value) { return r.hi < value; });
  return it != ranges_.end() && it->lo <= v;
}

bool Domain::next_geq(int v, int& out) const noexcept {
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), v,
      [](const Range& r, int value) { return r.hi < value; });
  if (it == ranges_.end()) return false;
  out = std::max(v, it->lo);
  return true;
}

std::vector<int> Domain::values() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(size_));
  for_each([&](int v) { out.push_back(v); });
  return out;
}

bool Domain::remove_below(int v) {
  if (empty() || v <= min()) return false;
  auto it = ranges_.begin();
  while (it != ranges_.end() && it->hi < v) ++it;
  ranges_.erase(ranges_.begin(), it);
  if (!ranges_.empty() && ranges_.front().lo < v) ranges_.front().lo = v;
  recount();
  return true;
}

bool Domain::remove_above(int v) {
  if (empty() || v >= max()) return false;
  auto it = ranges_.end();
  while (it != ranges_.begin() && std::prev(it)->lo > v) --it;
  ranges_.erase(it, ranges_.end());
  if (!ranges_.empty() && ranges_.back().hi > v) ranges_.back().hi = v;
  recount();
  return true;
}

bool Domain::remove(int v) { return remove_range(v, v); }

bool Domain::remove_range(int lo, int hi) {
  if (empty() || lo > hi || hi < min() || lo > max()) return false;
  std::vector<Range> out;
  out.reserve(ranges_.size() + 1);
  bool changed = false;
  for (const Range& r : ranges_) {
    if (r.hi < lo || r.lo > hi) {
      out.push_back(r);
      continue;
    }
    changed = true;
    if (r.lo < lo) out.push_back(Range{r.lo, lo - 1});
    if (r.hi > hi) out.push_back(Range{hi + 1, r.hi});
  }
  if (!changed) return false;
  ranges_ = std::move(out);
  recount();
  return true;
}

bool Domain::remove_values_sorted(std::span<const int> values) {
  if (empty() || values.empty()) return false;
  std::vector<Range> out;
  out.reserve(ranges_.size() + values.size());
  std::size_t vi = 0;
  bool changed = false;
  for (const Range& r : ranges_) {
    int lo = r.lo;
    while (vi < values.size() && values[vi] < lo) ++vi;
    std::size_t vj = vi;
    while (vj < values.size() && values[vj] <= r.hi) {
      const int v = values[vj];
      if (v > lo) out.push_back(Range{lo, v - 1});
      lo = v + 1;
      changed = true;
      ++vj;
    }
    if (lo <= r.hi) out.push_back(Range{lo, r.hi});
    vi = vj;
  }
  if (!changed) return false;
  ranges_ = std::move(out);
  recount();
  return true;
}

bool Domain::intersect(const Domain& other) {
  if (empty()) return false;
  std::vector<Range> out;
  out.reserve(std::max(ranges_.size(), other.ranges_.size()));
  std::size_t i = 0, j = 0;
  while (i < ranges_.size() && j < other.ranges_.size()) {
    const Range& a = ranges_[i];
    const Range& b = other.ranges_[j];
    const int lo = std::max(a.lo, b.lo);
    const int hi = std::min(a.hi, b.hi);
    if (lo <= hi) out.push_back(Range{lo, hi});
    if (a.hi < b.hi) ++i;
    else ++j;
  }
  if (out == ranges_) return false;
  ranges_ = std::move(out);
  recount();
  return true;
}

bool Domain::assign_value(int v) {
  if (assigned() && value() == v) return false;
  if (!contains(v)) {
    ranges_.clear();
    size_ = 0;
    return true;
  }
  ranges_.assign(1, Range{v, v});
  size_ = 1;
  return true;
}

std::string Domain::to_string() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    if (i) os << ", ";
    if (ranges_[i].lo == ranges_[i].hi) os << ranges_[i].lo;
    else os << ranges_[i].lo << ".." << ranges_[i].hi;
  }
  os << '}';
  return os.str();
}

}  // namespace rr::cp
