#include "cp/sparse_bitset.hpp"

#include "util/simd/simd.hpp"

namespace rr::cp {

namespace {

// Dense/sparse crossover: deactivated words hold zero, so whole-array SIMD
// sweeps are always *correct*; they are only *profitable* while the active
// prefix still covers a sizable fraction of the array.
bool dense(int limit, std::size_t num_words) noexcept {
  return static_cast<std::size_t>(limit) * 2 >= num_words;
}

}  // namespace

void ReversibleSparseBitSet::reset_trail() {
  trail_.clear();
  marks_.clear();
  saved_at_.assign(words_.size(), -1);
}

void ReversibleSparseBitSet::init_full(long bits) {
  RR_ASSERT(bits >= 0);
  bits_ = bits;
  const int n = words_for(bits);
  words_.assign(static_cast<std::size_t>(n), ~std::uint64_t{0});
  if (bits % 64 != 0 && n > 0)
    words_.back() = (std::uint64_t{1} << (bits % 64)) - 1;
  active_.resize(static_cast<std::size_t>(n));
  where_.resize(static_cast<std::size_t>(n));
  // Every word of an all-set init is nonzero (bits == 0 gives no words).
  limit_ = n;
  for (int w = 0; w < n; ++w) {
    active_[static_cast<std::size_t>(w)] = w;
    where_[static_cast<std::size_t>(w)] = w;
  }
  ++version_;
  reset_trail();
}

void ReversibleSparseBitSet::init_from_mask(
    std::span<const std::uint64_t> mask, long bits) {
  init_full(bits);
  if (bits == 0) return;
  RR_ASSERT(mask.size() == words_.size());
  and_mask(mask);
  reset_trail();  // init is a root operation; drop any recorded changes
}

long ReversibleSparseBitSet::count() const noexcept {
  if (dense(limit_, words_.size()))
    return static_cast<long>(simd::popcount(words_));
  long total = 0;
  for (int i = 0; i < limit_; ++i)
    total += std::popcount(
        words_[static_cast<std::size_t>(active_[static_cast<std::size_t>(i)])]);
  return total;
}

void ReversibleSparseBitSet::deactivate(int pos) {
  RR_ASSERT(pos >= 0 && pos < limit_);
  const int w = active_[static_cast<std::size_t>(pos)];
  const int last = limit_ - 1;
  const int other = active_[static_cast<std::size_t>(last)];
  active_[static_cast<std::size_t>(pos)] = other;
  active_[static_cast<std::size_t>(last)] = w;
  where_[static_cast<std::size_t>(other)] = pos;
  where_[static_cast<std::size_t>(w)] = last;
  limit_ = last;
}

void ReversibleSparseBitSet::and_mask(std::span<const std::uint64_t> mask) {
  RR_ASSERT(mask.size() >= words_.size());
  // No-op prescan: the mask changes nothing iff no word holds a bit outside
  // it. Zeroed (deactivated) words can't, so the whole-array sweep decides
  // this without consulting the active prefix — and a hit skips the trail
  // bookkeeping entirely.
  if (dense(limit_, words_.size()) &&
      !simd::active().andnot_any(words_.data(), mask.data(), words_.size()))
    return;
  for (int i = limit_ - 1; i >= 0; --i) {
    const int w = active_[static_cast<std::size_t>(i)];
    const std::uint64_t old = words_[static_cast<std::size_t>(w)];
    const std::uint64_t neu = old & mask[static_cast<std::size_t>(w)];
    if (neu == old) continue;
    save_word(w);
    words_[static_cast<std::size_t>(w)] = neu;
    ++version_;
    if (neu == 0) deactivate(i);
  }
}

void ReversibleSparseBitSet::and_not_mask(
    std::span<const std::uint64_t> mask) {
  RR_ASSERT(mask.size() >= words_.size());
  // No-op prescan, mirroring and_mask: clearing bits of `mask` is a no-op
  // iff the set does not intersect the mask at all.
  if (dense(limit_, words_.size()) &&
      simd::active().first_intersect(words_.data(), mask.data(),
                                     words_.size()) < 0)
    return;
  for (int i = limit_ - 1; i >= 0; --i) {
    const int w = active_[static_cast<std::size_t>(i)];
    const std::uint64_t old = words_[static_cast<std::size_t>(w)];
    const std::uint64_t neu = old & ~mask[static_cast<std::size_t>(w)];
    if (neu == old) continue;
    save_word(w);
    words_[static_cast<std::size_t>(w)] = neu;
    ++version_;
    if (neu == 0) deactivate(i);
  }
}

void ReversibleSparseBitSet::clear_bit(long bit) {
  RR_ASSERT(bit >= 0 && bit < bits_);
  const int w = static_cast<int>(bit >> 6);
  const std::uint64_t mask = std::uint64_t{1}
                             << (static_cast<unsigned>(bit) & 63u);
  std::uint64_t& word = words_[static_cast<std::size_t>(w)];
  if ((word & mask) == 0) return;
  save_word(w);
  word &= ~mask;
  ++version_;
  if (word == 0) deactivate(where_[static_cast<std::size_t>(w)]);
}

bool ReversibleSparseBitSet::intersects(std::span<const std::uint64_t> mask,
                                        int& residue) const noexcept {
  RR_ASSERT(mask.size() >= words_.size());
  if (residue >= 0 && residue < num_words() &&
      (words_[static_cast<std::size_t>(residue)] &
       mask[static_cast<std::size_t>(residue)]) != 0)
    return true;
  if (dense(limit_, words_.size())) {
    // Deactivated words are zero, so the whole-array scan finds exactly the
    // intersections the sparse loop would; the hit index is a valid residue.
    const long hit = simd::active().first_intersect(words_.data(), mask.data(),
                                                    words_.size());
    if (hit < 0) return false;
    residue = static_cast<int>(hit);
    return true;
  }
  for (int i = 0; i < limit_; ++i) {
    const int w = active_[static_cast<std::size_t>(i)];
    if ((words_[static_cast<std::size_t>(w)] &
         mask[static_cast<std::size_t>(w)]) != 0) {
      residue = w;
      return true;
    }
  }
  return false;
}

void ReversibleSparseBitSet::push_level() {
  marks_.push_back(LevelMark{trail_.size(), limit_});
}

void ReversibleSparseBitSet::pop_level() {
  RR_ASSERT(!marks_.empty());
  const LevelMark mark = marks_.back();
  marks_.pop_back();
  while (trail_.size() > mark.trail_size) {
    const TrailEntry& entry = trail_.back();
    words_[static_cast<std::size_t>(entry.word)] = entry.value;
    saved_at_[static_cast<std::size_t>(entry.word)] = -1;
    trail_.pop_back();
    ++version_;
  }
  limit_ = mark.limit;
}

}  // namespace rr::cp
