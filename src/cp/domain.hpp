// Finite integer domain with two storage representations:
//
//   - a sorted list of disjoint, non-adjacent closed ranges — the right
//     shape for the dense intervals the placer's coordinate and objective
//     variables keep (O(1) bounds, O(#ranges) mutation);
//   - a word-block bitset (base value + 64-bit words, popcount-based size,
//     cached bounds) — the fast path for large *fragmented* domains such as
//     placement-index sets after non-overlap pruning, where range lists
//     degrade to one entry per value. Word-block mutators (`keep_masked`,
//     `remove_values_sorted`, `intersect`) run word-parallel.
//
// Mutators that fragment the domain switch representation automatically
// when the range list outgrows the equivalent bitset (see should_pack());
// assignment collapses back to a single range. Both representations expose
// the same observable behavior — cp_domain_fuzz_test cross-checks every
// mutator against a std::set reference model across the switch boundary.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cp/types.hpp"
#include "util/error.hpp"

namespace rr::cp {

class Domain {
 public:
  struct Range {
    int lo;
    int hi;  // inclusive
    bool operator==(const Range&) const noexcept = default;
  };

  /// Empty domain.
  Domain() = default;

  /// Interval [lo, hi]; empty when lo > hi.
  Domain(int lo, int hi);

  /// Arbitrary value set (deduplicated, need not be sorted).
  static Domain from_values(std::vector<int> values);

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] long size() const noexcept { return size_; }
  [[nodiscard]] int min() const noexcept {
    RR_ASSERT(!empty());
    return is_words() ? min_ : ranges_.front().lo;
  }
  [[nodiscard]] int max() const noexcept {
    RR_ASSERT(!empty());
    return is_words() ? max_ : ranges_.back().hi;
  }
  [[nodiscard]] bool assigned() const noexcept { return size_ == 1; }
  [[nodiscard]] int value() const noexcept {
    RR_ASSERT(assigned());
    return min();
  }

  [[nodiscard]] bool contains(int v) const noexcept;

  /// Smallest domain value >= v, or nullopt-ish sentinel: returns true and
  /// writes `out` when such a value exists.
  [[nodiscard]] bool next_geq(int v, int& out) const noexcept;

  /// k-th smallest value, k in [0, size()). O(#ranges) / O(#words).
  [[nodiscard]] int nth_value(long k) const noexcept;

  /// Range-list view. Only valid while the domain is range-represented
  /// (never after a mutator packed it into word blocks) — use for_each /
  /// nth_value / fill_words for representation-agnostic access.
  [[nodiscard]] std::span<const Range> ranges() const noexcept {
    RR_ASSERT(!is_words());
    return ranges_;
  }

  /// True while the word-block representation is active (observability /
  /// tests; behavior is representation-independent).
  [[nodiscard]] bool is_words() const noexcept { return !words_.empty(); }

  /// Word-block export: bit k of `out` = contains(base + k). `out` is
  /// zeroed first; values outside the window are simply not reported.
  void fill_words(int base, std::span<std::uint64_t> out) const noexcept;

  /// Visit every value in increasing order.
  template <typename F>
  void for_each(F&& fn) const {
    if (is_words()) {
      for (std::size_t w = 0; w < words_.size(); ++w) {
        std::uint64_t word = words_[w];
        while (word != 0) {
          fn(base_ + static_cast<int>(w) * 64 + std::countr_zero(word));
          word &= word - 1;
        }
      }
      return;
    }
    for (const Range& r : ranges_)
      for (int v = r.lo; v <= r.hi; ++v) fn(v);
  }

  /// Materialize all values (test/debug convenience).
  [[nodiscard]] std::vector<int> values() const;

  // --- Mutators: every one returns true iff the domain changed. ---
  bool remove_below(int v);
  bool remove_above(int v);
  bool remove(int v);
  bool remove_range(int lo, int hi);
  /// Remove a sorted, duplicate-free batch of values in one linear merge.
  bool remove_values_sorted(std::span<const int> values);
  /// Keep only values also present in `other`.
  bool intersect(const Domain& other);
  /// Keep only values v in [base, base + 64 * mask.size()) whose mask bit
  /// (v - base) is set; everything outside the window is removed. This is
  /// the word-parallel pruning entry point of the compact-table
  /// propagators: live-set words go in directly, no per-value probes.
  bool keep_masked(int base, std::span<const std::uint64_t> mask);
  /// Collapse to {v}; collapses to empty when v is not present.
  bool assign_value(int v);

  bool operator==(const Domain& other) const noexcept;

  [[nodiscard]] std::string to_string() const;

 private:
  void recount() noexcept;
  /// Pack the range list into word blocks when fragmentation makes the
  /// bitset the smaller (and faster-to-trail) representation.
  void maybe_pack();
  void pack_to_words();
  /// Words mode: recompute min_/max_/size_ after bit clears; collapses to
  /// the canonical empty state when no bit is left.
  void rescan_words() noexcept;
  void clear_all() noexcept;
  /// Words mode: clear bits [lo, hi] (value coordinates, clipped). Returns
  /// number of bits cleared; does not rescan.
  long clear_bits(int lo, int hi) noexcept;

  // Exactly one representation is active for a non-empty domain; empty
  // domains keep both containers empty.
  std::vector<Range> ranges_;
  std::vector<std::uint64_t> words_;
  int base_ = 0;  // value of words_ bit 0
  int min_ = 0;   // cached bounds, valid in words mode
  int max_ = 0;
  long size_ = 0;
};

}  // namespace rr::cp
