// Finite integer domain stored as a sorted list of disjoint, non-adjacent
// closed ranges. Range lists degrade gracefully for the two domain shapes
// the placer produces: dense intervals (coordinates) and moderately
// fragmented anchor index sets after pruning.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "cp/types.hpp"
#include "util/error.hpp"

namespace rr::cp {

class Domain {
 public:
  struct Range {
    int lo;
    int hi;  // inclusive
    bool operator==(const Range&) const noexcept = default;
  };

  /// Empty domain.
  Domain() = default;

  /// Interval [lo, hi]; empty when lo > hi.
  Domain(int lo, int hi);

  /// Arbitrary value set (deduplicated, need not be sorted).
  static Domain from_values(std::vector<int> values);

  [[nodiscard]] bool empty() const noexcept { return ranges_.empty(); }
  [[nodiscard]] long size() const noexcept { return size_; }
  [[nodiscard]] int min() const noexcept {
    RR_ASSERT(!empty());
    return ranges_.front().lo;
  }
  [[nodiscard]] int max() const noexcept {
    RR_ASSERT(!empty());
    return ranges_.back().hi;
  }
  [[nodiscard]] bool assigned() const noexcept { return size_ == 1; }
  [[nodiscard]] int value() const noexcept {
    RR_ASSERT(assigned());
    return ranges_.front().lo;
  }

  [[nodiscard]] bool contains(int v) const noexcept;

  /// Smallest domain value >= v, or nullopt-ish sentinel: returns true and
  /// writes `out` when such a value exists.
  [[nodiscard]] bool next_geq(int v, int& out) const noexcept;

  [[nodiscard]] std::span<const Range> ranges() const noexcept {
    return ranges_;
  }

  /// Visit every value in increasing order.
  template <typename F>
  void for_each(F&& fn) const {
    for (const Range& r : ranges_)
      for (int v = r.lo; v <= r.hi; ++v) fn(v);
  }

  /// Materialize all values (test/debug convenience).
  [[nodiscard]] std::vector<int> values() const;

  // --- Mutators: every one returns true iff the domain changed. ---
  bool remove_below(int v);
  bool remove_above(int v);
  bool remove(int v);
  bool remove_range(int lo, int hi);
  /// Remove a sorted, duplicate-free batch of values in one linear merge.
  bool remove_values_sorted(std::span<const int> values);
  /// Keep only values also present in `other`.
  bool intersect(const Domain& other);
  /// Collapse to {v}; collapses to empty when v is not present.
  bool assign_value(int v);

  bool operator==(const Domain& other) const noexcept {
    return ranges_ == other.ranges_;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  void recount() noexcept;

  std::vector<Range> ranges_;
  long size_ = 0;
};

}  // namespace rr::cp
