#include "comm/net.hpp"

#include <algorithm>
#include <charconv>
#include <climits>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/error.hpp"

namespace rr::comm {
namespace {

[[noreturn]] void line_error(int line, const std::string& what) {
  throw InvalidInput("net:" + std::to_string(line) + ": " + what);
}

long parse_weight(std::string_view token, int line) {
  long value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size() || value < 0)
    line_error(line, "expected non-negative integer weight, got \"" +
                         std::string(token) + "\"");
  return value;
}

Point parse_terminal(std::string_view token, int line) {
  // token is "@x,y" with the '@' still attached.
  const std::string_view body = token.substr(1);
  const std::size_t comma = body.find(',');
  if (comma == std::string_view::npos)
    line_error(line, "terminal must be @x,y, got \"" + std::string(token) +
                         "\"");
  Point p;
  const std::string_view xs = body.substr(0, comma);
  const std::string_view ys = body.substr(comma + 1);
  const auto [xp, xe] = std::from_chars(xs.data(), xs.data() + xs.size(), p.x);
  const auto [yp, ye] = std::from_chars(ys.data(), ys.data() + ys.size(), p.y);
  if (xe != std::errc{} || xp != xs.data() + xs.size() || ye != std::errc{} ||
      yp != ys.data() + ys.size() || p.x < 0 || p.y < 0)
    line_error(line, "terminal coordinates must be non-negative integers in "
                     "\"" +
                         std::string(token) + "\"");
  return p;
}

}  // namespace

bool Net::mentions(std::string_view name) const {
  return std::find(modules.begin(), modules.end(), name) != modules.end();
}

bool NetList::mentions(std::string_view name) const {
  return std::any_of(nets.begin(), nets.end(),
                     [&](const Net& n) { return n.mentions(name); });
}

NetList parse_nets(std::string_view text) {
  NetList out;
  std::istringstream in{std::string(text)};
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream fields(raw);
    std::string keyword;
    if (!(fields >> keyword)) continue;  // blank or comment-only line
    if (keyword != "net")
      line_error(line, "expected \"net\", got \"" + keyword + "\"");
    std::string token;
    if (!(fields >> token)) line_error(line, "missing net weight");
    Net net;
    net.weight = parse_weight(token, line);
    while (fields >> token) {
      if (token.front() == '@') {
        net.terminals.push_back(parse_terminal(token, line));
      } else {
        net.modules.push_back(token);
      }
    }
    if (net.endpoint_count() < 2)
      line_error(line, "a net needs at least 2 endpoints, got " +
                           std::to_string(net.endpoint_count()));
    out.nets.push_back(std::move(net));
  }
  return out;
}

NetList load_nets(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidInput("cannot open net file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_nets(buffer.str());
  } catch (const InvalidInput& e) {
    // Rewrite the "net:<line>" prefix to "<path>:<line>".
    const std::string what = e.what();
    constexpr std::string_view kPrefix = "net:";
    if (what.rfind(kPrefix, 0) == 0)
      throw InvalidInput(path + ":" + what.substr(kPrefix.size()));
    throw;
  }
}

BoundNets::BoundNets(const NetList& nets,
                     std::span<const model::Module> modules)
    : module_count_(static_cast<int>(modules.size())) {
  std::unordered_map<std::string_view, int> index;
  index.reserve(modules.size());
  for (int i = 0; i < module_count_; ++i) index.emplace(modules[i].name(), i);

  std::vector<bool> used(modules.size(), false);
  for (const Net& net : nets.nets) {
    BoundNet bound;
    bound.weight = net.weight;
    for (const std::string& name : net.modules) {
      const auto it = index.find(name);
      if (it == index.end())
        throw ModelError("net endpoint \"" + name +
                         "\" names no module in the bound module list");
      bound.members.push_back(it->second);
    }
    if (net.weight <= 0) continue;
    for (const Point t : net.terminals)
      bound.terminals.push_back(terminal_center2(t));
    if (bound.members.size() + bound.terminals.size() < 2) continue;
    for (const int m : bound.members) used[m] = true;
    nets_.push_back(std::move(bound));
  }
  for (int i = 0; i < module_count_; ++i)
    if (used[i]) used_.push_back(i);
}

long BoundNets::wirelength2(std::span<const Center2> centers) const {
  RR_ASSERT(static_cast<int>(centers.size()) == module_count_);
  long total = 0;
  for (const BoundNet& net : nets_) {
    int lo_x = INT_MAX, hi_x = INT_MIN, lo_y = INT_MAX, hi_y = INT_MIN;
    const auto fold = [&](Center2 c) {
      lo_x = std::min(lo_x, c.x);
      hi_x = std::max(hi_x, c.x);
      lo_y = std::min(lo_y, c.y);
      hi_y = std::max(hi_y, c.y);
    };
    for (const int m : net.members) fold(centers[m]);
    for (const Center2 t : net.terminals) fold(t);
    total += net.weight *
             (static_cast<long>(hi_x - lo_x) + static_cast<long>(hi_y - lo_y));
  }
  return total;
}

long pins_wirelength2(const NetList& nets, std::span<const NamedPin> pins) {
  long total = 0;
  for (const Net& net : nets.nets) {
    if (net.weight <= 0) continue;
    int lo_x = INT_MAX, hi_x = INT_MIN, lo_y = INT_MAX, hi_y = INT_MIN;
    int present = 0;
    const auto fold = [&](Center2 c) {
      lo_x = std::min(lo_x, c.x);
      hi_x = std::max(hi_x, c.x);
      lo_y = std::min(lo_y, c.y);
      hi_y = std::max(hi_y, c.y);
      ++present;
    };
    for (const NamedPin& pin : pins)
      if (net.mentions(pin.name)) fold(pin.center);
    for (const Point t : net.terminals) fold(terminal_center2(t));
    if (present < 2) continue;
    total += net.weight *
             (static_cast<long>(hi_x - lo_x) + static_cast<long>(hi_y - lo_y));
  }
  return total;
}

PinContext PinContext::build(const NetList& nets, std::string_view name,
                             std::span<const NamedPin> pins) {
  PinContext out;
  for (const Net& net : nets.nets) {
    if (net.weight <= 0 || !net.mentions(name)) continue;
    NetBounds b{net.weight, INT_MAX, INT_MIN, INT_MAX, INT_MIN};
    bool any = false;
    const auto fold = [&](Center2 c) {
      b.lo_x = std::min(b.lo_x, c.x);
      b.hi_x = std::max(b.hi_x, c.x);
      b.lo_y = std::min(b.lo_y, c.y);
      b.hi_y = std::max(b.hi_y, c.y);
      any = true;
    };
    for (const NamedPin& pin : pins)
      if (net.mentions(pin.name)) fold(pin.center);
    for (const Point t : net.terminals) fold(terminal_center2(t));
    if (any) out.bounds_.push_back(b);
  }
  return out;
}

long PinContext::cost2(Center2 c) const noexcept {
  long total = 0;
  for (const NetBounds& b : bounds_) {
    const long dx = std::max(0, std::max(b.lo_x - c.x, c.x - b.hi_x));
    const long dy = std::max(0, std::max(b.lo_y - c.y, c.y - b.hi_y));
    total += b.weight * (dx + dy);
  }
  return total;
}

}  // namespace rr::comm
