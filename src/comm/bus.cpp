#include "comm/bus.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rr::comm {
namespace {

constexpr int kClb = static_cast<int>(fpga::ResourceType::kClb);
constexpr int kBus = static_cast<int>(fpga::ResourceType::kBusMacro);

/// Retype the CLB cells of row `row` to bus macros. The row must lie inside
/// the shape's bounding box — the caller validates before calling. Returns
/// nullopt when the row has no CLB cell.
std::optional<geost::ShapeFootprint> attach_shape(
    const geost::ShapeFootprint& shape, int row) {
  std::vector<Point> clb_cells, bus_cells;
  std::vector<geost::TypedCells> groups;
  for (const geost::TypedCells& group : shape.typed()) {
    if (group.resource != kClb) {
      groups.push_back(group);
      continue;
    }
    for (const Point& cell : group.cells.cells()) {
      (cell.y == row ? bus_cells : clb_cells).push_back(cell);
    }
  }
  if (bus_cells.empty()) return std::nullopt;
  if (!clb_cells.empty())
    groups.push_back(
        geost::TypedCells{kClb, CellSet(std::move(clb_cells), false)});
  groups.push_back(
      geost::TypedCells{kBus, CellSet(std::move(bus_cells), false)});
  return geost::ShapeFootprint::from_typed(std::move(groups));
}

}  // namespace

std::vector<int> bus_rows(int height, const BusSpec& spec) {
  RR_REQUIRE(spec.lane_period > 0, "bus lane period must be positive");
  RR_REQUIRE(spec.lane_offset >= 0, "bus lane offset must be >= 0");
  std::vector<int> rows;
  for (int y = spec.lane_offset; y < height; y += spec.lane_period) {
    rows.push_back(y);
    if (spec.max_lanes > 0 &&
        static_cast<int>(rows.size()) >= spec.max_lanes)
      break;
  }
  return rows;
}

fpga::Fabric with_bus_lanes(const fpga::Fabric& fabric, const BusSpec& spec) {
  fpga::Fabric out = fabric;
  for (const int y : bus_rows(fabric.height(), spec)) {
    for (int x = 0; x < fabric.width(); ++x) {
      if (out.at(x, y) == fpga::ResourceType::kClb)
        out.set(x, y, fpga::ResourceType::kBusMacro);
    }
  }
  return out;
}

model::Module with_bus_attachment(const model::Module& module,
                                  int attachment_row) {
  std::vector<geost::ShapeFootprint> shapes;
  int index = 0;
  for (const geost::ShapeFootprint& shape : module.shapes()) {
    // A row outside the shape is a model error, not something to clamp:
    // silently attaching at a different row than requested would connect
    // the module to the wrong bus lane.
    const Rect box = shape.bounding_box();
    if (attachment_row < 0 || attachment_row >= box.height)
      throw ModelError("module " + module.name() + " shape " +
                       std::to_string(index) + ": attachment row " +
                       std::to_string(attachment_row) +
                       " outside shape height " + std::to_string(box.height));
    if (auto attached = attach_shape(shape, attachment_row))
      shapes.push_back(std::move(*attached));
    ++index;
  }
  if (shapes.empty())
    throw ModelError("module " + module.name() +
                     " has no layout with logic on the attachment row");
  return model::Module(module.name(), std::move(shapes));
}

std::vector<model::Module> with_bus_attachment(
    std::span<const model::Module> modules, int attachment_row) {
  std::vector<model::Module> out;
  out.reserve(modules.size());
  for (const model::Module& m : modules)
    out.push_back(with_bus_attachment(m, attachment_row));
  return out;
}

}  // namespace rr::comm
