// On-FPGA communication architecture (ReCoBus-style).
//
// The module placer in the paper is embedded in the ReCoBus-Builder
// framework, whose bus macros connect reconfigurable modules to the static
// system. §III.A notes that "internal resource types can further be used to
// represent communication macros for bus attachment" — this module does
// exactly that: horizontal bus lanes become rows of kBusMacro tiles, and a
// module's connection row is retyped to kBusMacro, so the ordinary
// resource-matching constraint (eq. 3) forces every module onto a lane.
#pragma once

#include <vector>

#include "fpga/fabric.hpp"
#include "model/module.hpp"

namespace rr::comm {

struct BusSpec {
  /// A bus lane every `lane_period` rows.
  int lane_period = 8;
  /// Row of the first lane.
  int lane_offset = 1;
  /// Maximum number of lanes (0 = as many as fit).
  int max_lanes = 0;
};

/// The rows of a `height`-row device that carry bus lanes under `spec`.
[[nodiscard]] std::vector<int> bus_rows(int height, const BusSpec& spec);

/// Copy of `fabric` with bus lanes: CLB tiles in every bus row become
/// kBusMacro tiles. Dedicated resources (BRAM/DSP/IO/clock/static) are left
/// untouched — on real devices the bus threads through the logic columns.
[[nodiscard]] fpga::Fabric with_bus_lanes(const fpga::Fabric& fabric,
                                          const BusSpec& spec);

/// Copy of `module` whose shapes request a bus connection: in every shape,
/// the CLB cells of the attachment row (local y = `attachment_row` within
/// the shape) are retyped to kBusMacro. The row must lie inside every
/// shape's bounding box — a negative row or one at/past a shape's height
/// throws ModelError naming the module, shape, and row. Shapes without any
/// CLB cell in that row are dropped (they cannot attach); a module losing
/// all shapes this way throws ModelError.
[[nodiscard]] model::Module with_bus_attachment(const model::Module& module,
                                                int attachment_row = 0);

/// Convenience: attach a whole module set (same row for all).
[[nodiscard]] std::vector<model::Module> with_bus_attachment(
    std::span<const model::Module> modules, int attachment_row = 0);

}  // namespace rr::comm
