// Inter-module communication model: weighted nets between modules and to
// fixed IO/bus attachment points.
//
// Ahmadinia et al. show communication cost belongs in the online placement
// decision itself; Deak et al. use the same weighted half-perimeter
// wirelength (HPWL) formulation for PR floorplanning. A net connects two or
// more endpoints — module names and/or fixed fabric terminals — and costs
// `weight * HPWL(endpoint centers)`.
//
// All arithmetic uses *doubled* coordinates so module centers stay integral:
// a module placed at anchor (x, y) whose chosen shape has bounding box
// (w, h) has doubled center (2x + w, 2y + h); a terminal tile (tx, ty) has
// doubled center (2tx + 1, 2ty + 1). A doubled HPWL of `d` is `d / 2` tiles
// of real wirelength.
//
// The zero-weight oracle: every consumer gates its comm machinery on
// "a net list is present AND the configured weight is positive AND at least
// one net survives binding". When any of those fail, the consumer must run
// byte-for-byte the area-only code path (same variables, same propagators,
// same RNG draws), so `--comm-weight 0` is differentially testable against
// builds that never heard of src/comm.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/point.hpp"
#include "geo/rect.hpp"
#include "model/module.hpp"

namespace rr::comm {

/// Relative scale of the extent term when a combined objective mixes area
/// and wirelength: cost = kExtentScale * extent + comm_weight * HPWL2.
/// One tile of horizontal extent trades against kExtentScale / (2 * weight)
/// tiles of wirelength.
inline constexpr long kExtentScale = 16;

/// One weighted net: >= 2 endpoints drawn from module names and fixed
/// fabric terminals.
struct Net {
  long weight = 1;
  std::vector<std::string> modules;
  std::vector<Point> terminals;

  [[nodiscard]] bool mentions(std::string_view name) const;
  [[nodiscard]] std::size_t endpoint_count() const noexcept {
    return modules.size() + terminals.size();
  }
};

struct NetList {
  std::vector<Net> nets;

  [[nodiscard]] bool empty() const noexcept { return nets.empty(); }
  [[nodiscard]] bool mentions(std::string_view name) const;
};

/// Parse the `.net` text format:
///
///   # comment (blank lines ignored)
///   net <weight> <endpoint> <endpoint> [...]
///
/// where an endpoint is a module name or `@x,y` (a fixed fabric terminal).
/// Weights must be non-negative integers; every net needs >= 2 endpoints.
/// Errors throw InvalidInput prefixed with the 1-based line number.
[[nodiscard]] NetList parse_nets(std::string_view text);

/// parse_nets over a file; errors are prefixed with `path:line`.
[[nodiscard]] NetList load_nets(const std::string& path);

/// Doubled-coordinate center (see file comment).
struct Center2 {
  int x = 0;
  int y = 0;

  friend constexpr bool operator==(Center2, Center2) noexcept = default;
};

/// Doubled center of a shape bounding box anchored at (x, y).
[[nodiscard]] constexpr Center2 center2(const Rect& bbox, int x,
                                        int y) noexcept {
  return Center2{2 * x + bbox.width, 2 * y + bbox.height};
}

/// Doubled center of a terminal tile.
[[nodiscard]] constexpr Center2 terminal_center2(Point t) noexcept {
  return Center2{2 * t.x + 1, 2 * t.y + 1};
}

/// A net list bound against a fixed module list: module names resolved to
/// indices, zero-weight and degenerate (< 2 endpoint) nets dropped. Binding
/// throws ModelError on a net naming a module absent from the list.
class BoundNets {
 public:
  struct BoundNet {
    long weight = 1;
    std::vector<int> members;        ///< indices into the bound module list
    std::vector<Center2> terminals;  ///< pre-doubled fixed endpoints
  };

  BoundNets() = default;
  BoundNets(const NetList& nets, std::span<const model::Module> modules);

  /// True when no net survived binding — consumers must then take the
  /// area-only path (the zero-weight oracle).
  [[nodiscard]] bool empty() const noexcept { return nets_.empty(); }
  [[nodiscard]] const std::vector<BoundNet>& nets() const noexcept {
    return nets_;
  }
  [[nodiscard]] int module_count() const noexcept { return module_count_; }
  /// Sorted unique indices of modules mentioned by any surviving net.
  [[nodiscard]] const std::vector<int>& used_modules() const noexcept {
    return used_;
  }

  /// Weighted doubled HPWL of a full assignment: `centers[i]` is the doubled
  /// center of module i (size must equal module_count()).
  [[nodiscard]] long wirelength2(std::span<const Center2> centers) const;

 private:
  std::vector<BoundNet> nets_;
  std::vector<int> used_;
  int module_count_ = 0;
};

/// A placed instance pin, for evaluating partial configurations where the
/// same module may be instantiated zero or more times (online traces).
struct NamedPin {
  std::string_view name;
  Center2 center;
};

/// Weighted doubled HPWL of a pin set: each net folds the centers of every
/// pin whose name it mentions plus its terminals; nets with fewer than two
/// present endpoints contribute 0.
[[nodiscard]] long pins_wirelength2(const NetList& nets,
                                    std::span<const NamedPin> pins);

/// Per-request ranking context: the fixed partner pins of every net that
/// mentions one module, folded to bounding intervals so candidate anchors
/// score in O(nets mentioning the module).
///
/// Nets where the module is the only present endpoint are dropped (every
/// anchor would cost the same), so an empty() context means communication
/// cannot distinguish anchors and callers must fall back to the area-only
/// policy — again the zero-weight oracle.
class PinContext {
 public:
  struct NetBounds {
    long weight = 1;
    int lo_x = 0;
    int hi_x = 0;
    int lo_y = 0;
    int hi_y = 0;
  };

  PinContext() = default;

  /// Context for placing one instance of module `name` given the currently
  /// placed pins (the caller excludes the moving instance itself).
  [[nodiscard]] static PinContext build(const NetList& nets,
                                        std::string_view name,
                                        std::span<const NamedPin> pins);

  [[nodiscard]] bool empty() const noexcept { return bounds_.empty(); }
  [[nodiscard]] const std::vector<NetBounds>& bounds() const noexcept {
    return bounds_;
  }

  /// Weighted doubled HPWL contribution of placing the module at doubled
  /// center `c`: sum over nets of weight * (span growth to include c).
  [[nodiscard]] long cost2(Center2 c) const noexcept;

 private:
  std::vector<NetBounds> bounds_;
};

}  // namespace rr::comm
