// Module library format (.mlf) — the textual stand-in for the module
// specification (unplaced netlists + bounding boxes) of Fig. 2.
//
//   # comment
//   module <name>
//   shape
//   CCB.
//   CCB.
//   CC..
//   endshape
//   [more shapes...]
//   endmodule
//
// Shape rows are printed top row first; '.' marks cells outside the shape;
// other characters are resource chars (resource_char). Every shape of a
// module is one design alternative.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "model/module.hpp"

namespace rr::model {

[[nodiscard]] std::vector<Module> parse_mlf(std::istream& in);
[[nodiscard]] std::vector<Module> parse_mlf_string(const std::string& text);
[[nodiscard]] std::vector<Module> load_mlf(const std::string& path);

void write_mlf(std::ostream& out, std::span<const Module> modules);
[[nodiscard]] std::string write_mlf_string(std::span<const Module> modules);
void save_mlf(const std::string& path, std::span<const Module> modules);

}  // namespace rr::model
