#include "model/module.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rr::model {

Module::Module(std::string name, std::vector<ShapeFootprint> shapes)
    : name_(std::move(name)), shapes_(std::move(shapes)) {
  // Structural violations of the §III.A definitions are ModelError, not
  // InvalidInput: they indicate a broken construction, not a bad file.
  if (name_.empty()) throw ModelError("module name must be non-empty");
  if (shapes_.empty())
    throw ModelError("module must have at least one shape (n > 0)");
}

int Module::min_area() const noexcept {
  int best = shapes_.front().area();
  for (const ShapeFootprint& s : shapes_) best = std::min(best, s.area());
  return best;
}

int Module::max_area() const noexcept {
  int best = shapes_.front().area();
  for (const ShapeFootprint& s : shapes_) best = std::max(best, s.area());
  return best;
}

Module Module::without_alternatives() const {
  return Module(name_, {shapes_.front()});
}

int Module::demand(int shape_index, fpga::ResourceType resource) const {
  RR_REQUIRE(shape_index >= 0 && shape_index < shape_count(),
             "shape index out of range");
  return shapes_[static_cast<std::size_t>(shape_index)].demand(
      static_cast<int>(resource));
}

int Module::min_demand(fpga::ResourceType resource) const {
  int best = demand(0, resource);
  for (int s = 1; s < shape_count(); ++s)
    best = std::min(best, demand(s, resource));
  return best;
}

std::string shape_picture(const ShapeFootprint& shape) {
  const Rect box = shape.bounding_box();
  std::vector<std::string> rows(static_cast<std::size_t>(box.height),
                                std::string(static_cast<std::size_t>(box.width), '.'));
  for (const TypedCells& group : shape.typed()) {
    const char ch = fpga::resource_char(
        static_cast<fpga::ResourceType>(group.resource));
    for (const Point& p : group.cells.cells())
      rows[static_cast<std::size_t>(p.y)][static_cast<std::size_t>(p.x)] = ch;
  }
  std::string out;
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
    out += *it;
    out.push_back('\n');
  }
  return out;
}

}  // namespace rr::model
