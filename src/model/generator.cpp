#include "model/generator.hpp"

#include <algorithm>
#include <cmath>

#include "model/alternatives.hpp"
#include "util/error.hpp"

namespace rr::model {
namespace {

constexpr int kClb = static_cast<int>(fpga::ResourceType::kClb);
constexpr int kBram = static_cast<int>(fpga::ResourceType::kBram);

}  // namespace

ModuleGenerator::ModuleGenerator(const GeneratorParams& params,
                                 std::uint64_t seed)
    : params_(params), rng_(seed) {
  RR_REQUIRE(params.clb_min > 0 && params.clb_max >= params.clb_min,
             "CLB range must be positive and ordered");
  RR_REQUIRE(params.bram_blocks_min >= 0 &&
                 params.bram_blocks_max >= params.bram_blocks_min,
             "BRAM block range must be non-negative and ordered");
  RR_REQUIRE(params.bram_block_height > 0, "BRAM block height must be > 0");
  RR_REQUIRE(params.alternatives >= 1, "at least one shape per module");
  RR_REQUIRE(params.min_height >= 1 && params.max_height >= params.min_height,
             "height range must be positive and ordered");
}

ShapeFootprint ModuleGenerator::make_column_shape(int clbs, int bram_blocks,
                                                  int bram_block_height,
                                                  int height,
                                                  int bram_column) {
  RR_REQUIRE(clbs > 0, "shape needs at least one CLB");
  RR_REQUIRE(bram_blocks >= 0 && bram_block_height > 0,
             "invalid BRAM parameters");
  const int stack = bram_blocks * bram_block_height;
  height = std::max({height, stack, 1});

  const int full_cols = clbs / height;
  const int remainder = clbs % height;
  const int clb_cols = full_cols + (remainder > 0 ? 1 : 0);
  const int total_cols = clb_cols + (bram_blocks > 0 ? 1 : 0);
  bram_column = std::clamp(bram_column, 0, total_cols - 1);

  std::vector<Point> clb_cells;
  std::vector<Point> bram_cells;
  int clb_left = clbs;
  int clb_col_index = 0;  // counts CLB columns laid so far
  for (int col = 0; col < total_cols; ++col) {
    if (bram_blocks > 0 && col == bram_column) {
      for (int y = 0; y < stack; ++y) bram_cells.push_back(Point{col, y});
      continue;
    }
    // Full columns first; the final CLB column takes the remainder, giving
    // the stair-stepped outlines of Figure 1.
    const bool is_last_clb_col = clb_col_index == clb_cols - 1;
    const int rows = is_last_clb_col ? clb_left : height;
    for (int y = 0; y < rows; ++y) clb_cells.push_back(Point{col, y});
    clb_left -= rows;
    ++clb_col_index;
  }
  RR_ASSERT(clb_left == 0);

  std::vector<TypedCells> groups;
  groups.push_back(TypedCells{kClb, CellSet(std::move(clb_cells), false)});
  if (!bram_cells.empty())
    groups.push_back(TypedCells{kBram, CellSet(std::move(bram_cells), false)});
  return ShapeFootprint::from_typed(std::move(groups));
}

int ModuleGenerator::min_feasible_height(int clbs, int bram_stack) const {
  int lo = std::max({params_.min_height, bram_stack, 1});
  if (params_.max_width > 0) {
    // Keep the bounding box within max_width columns: the memory column
    // (when present) consumes one, CLB columns the rest.
    const int clb_width = params_.max_width - (bram_stack > 0 ? 1 : 0);
    RR_REQUIRE(clb_width >= 1, "max_width too small for this module mix");
    lo = std::max(lo, (clbs + clb_width - 1) / clb_width);
  }
  return lo;
}

int ModuleGenerator::pick_height(int total_cells, int bram_stack) const {
  const int clbs = total_cells - bram_stack;
  const int ideal =
      static_cast<int>(std::lround(std::sqrt(static_cast<double>(total_cells))));
  const int lo = min_feasible_height(clbs, bram_stack);
  const int hi = std::max(lo, params_.max_height);
  return std::clamp(ideal, lo, hi);
}

Module ModuleGenerator::generate(const std::string& name) {
  const int clbs = rng_.uniform_int(params_.clb_min, params_.clb_max);
  const int blocks =
      rng_.uniform_int(params_.bram_blocks_min, params_.bram_blocks_max);
  const int bh = params_.bram_block_height;
  const int stack = blocks * bh;
  int height = pick_height(clbs + stack, stack);
  // Random +/-1 jitter keeps workloads from all sharing one aspect ratio.
  const int height_lo = min_feasible_height(clbs, stack);
  height = std::clamp(height + rng_.uniform_int(-1, 1), height_lo,
                      std::max(params_.max_height, height_lo));

  std::vector<ShapeFootprint> shapes;
  const ShapeFootprint base =
      make_column_shape(clbs, blocks, bh, height, /*bram_column=*/0);
  shapes.push_back(base);

  // Candidate variants in preference order (§V.A): 180-degree rotation,
  // internal layout (memory column moved), external layout (new bounding
  // box), then rotations of those until the requested count is reached.
  auto try_add = [&](ShapeFootprint candidate) {
    if (static_cast<int>(shapes.size()) >=
        std::max(1, params_.alternatives))
      return;
    add_unique_shape(shapes, std::move(candidate));
  };

  try_add(transform_shape(base, Transform::kRot180));

  // One external-layout variant (different bounding box) before the
  // internal ones: bounding-box diversity is what reduces fragmentation,
  // so it must make the cut even at alternatives=3..4.
  const int height_floor = min_feasible_height(clbs, stack);
  const int height_ceil = std::max(params_.max_height, height_floor);
  const auto external_of = [&](int delta) {
    const int h2 = std::clamp(height + delta, height_floor, height_ceil);
    return make_column_shape(clbs, blocks, bh, h2, /*bram_column=*/0);
  };
  for (const int delta : {-2, 2, -3, 3, -1, 1}) {
    if (static_cast<int>(shapes.size()) >= 3) break;
    const int before = static_cast<int>(shapes.size());
    try_add(external_of(delta));
    if (static_cast<int>(shapes.size()) > before) break;  // one is enough here
  }

  // Internal variant: same bounding box, memory column at the other edge.
  try_add(make_column_shape(clbs, blocks, bh, height, /*bram_column=*/1 << 20));

  // Fill the remaining slots with more externals and their rotations.
  for (const int delta : {-2, 2, -3, 3, -1, 1, -4, 4, -5, 5}) {
    if (static_cast<int>(shapes.size()) >= params_.alternatives) break;
    const ShapeFootprint external = external_of(delta);
    try_add(external);
    try_add(transform_shape(external, Transform::kRot180));
  }
  return Module(name, std::move(shapes));
}

std::vector<Module> ModuleGenerator::generate_many(int count) {
  RR_REQUIRE(count >= 0, "module count must be >= 0");
  std::vector<Module> modules;
  modules.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    std::string name = "m";
    if (i < 10) name += '0';
    name += std::to_string(i);
    modules.push_back(generate(name));
  }
  return modules;
}

}  // namespace rr::model
