// Modules and their design alternatives (§III.A).
//
// A module M = {S1, ..., Sn} is a non-empty set of shapes; each shape is
// one physical implementation (a ShapeFootprint: tile sets grouped by
// resource type). Alternatives are "functionally equivalent modules with
// different layouts" — same IP core, different internal/external layout and
// possibly different resource consumption.
#pragma once

#include <string>
#include <vector>

#include "fpga/resource.hpp"
#include "geost/footprint.hpp"

namespace rr::model {

using geost::ShapeFootprint;
using geost::TypedCells;

class Module {
 public:
  Module(std::string name, std::vector<ShapeFootprint> shapes);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<ShapeFootprint>& shapes() const noexcept {
    return shapes_;
  }
  [[nodiscard]] int shape_count() const noexcept {
    return static_cast<int>(shapes_.size());
  }

  /// Smallest / largest cell count across the alternatives (alternatives
  /// need not consume equal resources, §III.A).
  [[nodiscard]] int min_area() const noexcept;
  [[nodiscard]] int max_area() const noexcept;

  /// Copy restricted to the first shape only — the paper's "without design
  /// alternatives" configuration places every module with its base layout.
  [[nodiscard]] Module without_alternatives() const;

  /// Total demand for `resource` of shape `shape_index`.
  [[nodiscard]] int demand(int shape_index, fpga::ResourceType resource) const;

  /// Minimum demand for `resource` over all shapes (for capacity bounds).
  [[nodiscard]] int min_demand(fpga::ResourceType resource) const;

 private:
  std::string name_;
  std::vector<ShapeFootprint> shapes_;
};

/// Render a shape as a resource-character picture (top row first, '.' for
/// cells outside the shape) — the visual form used in module library files
/// and the Figure 1 bench.
[[nodiscard]] std::string shape_picture(const ShapeFootprint& shape);

}  // namespace rr::model
