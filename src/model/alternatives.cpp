#include "model/alternatives.hpp"

namespace rr::model {

geost::ShapeFootprint transform_shape(const geost::ShapeFootprint& shape,
                                      Transform t) {
  std::vector<geost::TypedCells> groups;
  groups.reserve(shape.typed().size());
  for (const geost::TypedCells& group : shape.typed()) {
    std::vector<Point> cells;
    cells.reserve(group.cells.size());
    for (const Point& p : group.cells.cells()) cells.push_back(apply(t, p));
    // No per-group normalization: from_typed normalizes all groups jointly,
    // preserving the relative position of dedicated resources.
    groups.push_back(geost::TypedCells{
        group.resource, CellSet(std::move(cells), /*normalize=*/false)});
  }
  return geost::ShapeFootprint::from_typed(std::move(groups));
}

bool same_layout(const geost::ShapeFootprint& a,
                 const geost::ShapeFootprint& b) {
  if (a.typed().size() != b.typed().size()) return false;
  for (std::size_t i = 0; i < a.typed().size(); ++i) {
    // from_typed sorts groups by resource id, so index-wise compare is sound.
    if (a.typed()[i].resource != b.typed()[i].resource) return false;
    if (!(a.typed()[i].cells == b.typed()[i].cells)) return false;
  }
  return true;
}

bool add_unique_shape(std::vector<geost::ShapeFootprint>& shapes,
                      geost::ShapeFootprint candidate) {
  for (const geost::ShapeFootprint& existing : shapes) {
    if (same_layout(existing, candidate)) return false;
  }
  shapes.push_back(std::move(candidate));
  return true;
}

std::vector<geost::ShapeFootprint> symmetry_variants(
    const geost::ShapeFootprint& shape,
    std::span<const Transform> transforms) {
  std::vector<geost::ShapeFootprint> out;
  out.push_back(transform_shape(shape, Transform::kIdentity));
  for (Transform t : transforms) {
    if (t == Transform::kIdentity) continue;
    add_unique_shape(out, transform_shape(shape, t));
  }
  return out;
}

}  // namespace rr::model
