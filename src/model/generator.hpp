// Random module workload generator following the paper's evaluation setup
// (§V.A): modules of 20–100 CLBs and 0–4 embedded memory blocks, each
// represented by four design alternatives — the 180-degree rotation plus
// internal-layout (same bounding box, memory at a different position) and
// external-layout (different bounding box) variants.
#pragma once

#include <cstdint>
#include <vector>

#include "model/module.hpp"
#include "util/rng.hpp"

namespace rr::model {

struct GeneratorParams {
  int clb_min = 20;
  int clb_max = 100;
  int bram_blocks_min = 0;
  int bram_blocks_max = 4;
  /// Embedded memory blocks are rectangular, taller than wide (§V.A):
  /// one block occupies 1 column x this many rows of BRAM tiles.
  int bram_block_height = 2;
  /// Shapes per module, including the base layout. 1 disables alternatives.
  int alternatives = 4;
  /// Target module height; the generator picks near sqrt-area heights
  /// clamped to [min_height, max_height].
  int min_height = 3;
  int max_height = 14;
  /// Maximum bounding-box width, 0 = unconstrained. Real reconfigurable
  /// modules are kept narrower than the device's dedicated-resource column
  /// period so their footprints can match the fabric; set this to that
  /// period minus one (e.g. 7 for BRAM columns every 8).
  int max_width = 0;
};

class ModuleGenerator {
 public:
  ModuleGenerator(const GeneratorParams& params, std::uint64_t seed);

  /// One random module with `params.alternatives` distinct layouts.
  [[nodiscard]] Module generate(const std::string& name);

  /// A batch named m00, m01, ...
  [[nodiscard]] std::vector<Module> generate_many(int count);

  /// Deterministic shape construction used by generate() and the tests:
  /// `clbs` logic tiles and `bram_blocks` memory blocks in a column layout
  /// of height `height`, with the memory column at `bram_column` (clamped)
  /// and remaining columns filled bottom-up with CLBs. The last CLB column
  /// may be partial, producing the paper's non-rectangular outlines.
  [[nodiscard]] static ShapeFootprint make_column_shape(int clbs,
                                                        int bram_blocks,
                                                        int bram_block_height,
                                                        int height,
                                                        int bram_column);

 private:
  [[nodiscard]] int min_feasible_height(int clbs, int bram_stack) const;
  [[nodiscard]] int pick_height(int total_cells, int bram_stack) const;

  GeneratorParams params_;
  Rng rng_;
};

}  // namespace rr::model
