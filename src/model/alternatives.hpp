// Design-alternative derivation.
//
// Given a base shape, derive functionally equivalent layout variants:
//   - rotations/mirrors (the paper's evaluation uses 180-degree rotation;
//     90/270 are excluded for modules with rectangular dedicated resources,
//     §V.A — callers filter via fabric compatibility anyway)
//   - internal layout variants: same bounding box, dedicated resources at
//     different positions inside the module
//   - external layout variants: different bounding box for the same
//     resource demand
// The helpers here are purely geometric; the ModuleGenerator composes them.
#pragma once

#include <vector>

#include "geo/transform.hpp"
#include "geost/footprint.hpp"

namespace rr::model {

/// Shape under an orthogonal transform; all tile sets are transformed
/// jointly and the result re-normalized to origin (0, 0).
[[nodiscard]] geost::ShapeFootprint transform_shape(
    const geost::ShapeFootprint& shape, Transform t);

/// True when both shapes have identical typed cells (same layout).
[[nodiscard]] bool same_layout(const geost::ShapeFootprint& a,
                               const geost::ShapeFootprint& b);

/// Append `candidate` unless an identical layout is already present.
/// Returns true when appended.
bool add_unique_shape(std::vector<geost::ShapeFootprint>& shapes,
                      geost::ShapeFootprint candidate);

/// All distinct images of `shape` under the given transforms, the identity
/// first (deduplicated; symmetric shapes yield fewer variants).
[[nodiscard]] std::vector<geost::ShapeFootprint> symmetry_variants(
    const geost::ShapeFootprint& shape, std::span<const Transform> transforms);

}  // namespace rr::model
