#include "model/library.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace rr::model {
namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw InvalidInput("mlf:" + std::to_string(line) + ": " + message);
}

ShapeFootprint shape_from_rows(const std::vector<std::string>& rows,
                               int line_no) {
  std::map<int, std::vector<Point>> by_resource;
  const int height = static_cast<int>(rows.size());
  for (int i = 0; i < height; ++i) {
    const std::string& row = rows[static_cast<std::size_t>(i)];
    const int y = height - 1 - i;  // top row first in the file
    for (int x = 0; x < static_cast<int>(row.size()); ++x) {
      const char ch = row[static_cast<std::size_t>(x)];
      if (ch == '.') continue;
      const auto t = fpga::resource_from_char(ch);
      if (!t || !fpga::placeable(*t))
        fail(line_no, std::string("invalid shape character '") + ch + "'");
      by_resource[static_cast<int>(*t)].push_back(Point{x, y});
    }
  }
  if (by_resource.empty()) fail(line_no, "shape has no tiles");
  std::vector<TypedCells> groups;
  for (auto& [resource, cells] : by_resource)
    groups.push_back(TypedCells{resource, CellSet(std::move(cells), false)});
  return ShapeFootprint::from_typed(std::move(groups));
}

}  // namespace

std::vector<Module> parse_mlf(std::istream& in) {
  std::vector<Module> modules;
  std::string line;
  int line_no = 0;

  std::string current_name;
  std::vector<ShapeFootprint> current_shapes;
  bool in_module = false;
  bool in_shape = false;
  std::vector<std::string> shape_rows;
  int shape_start_line = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (in_shape) {
      const std::string_view text = trim(line);
      if (text == "endshape") {
        current_shapes.push_back(shape_from_rows(shape_rows, shape_start_line));
        shape_rows.clear();
        in_shape = false;
      } else if (text.empty()) {
        fail(line_no, "blank line inside shape");
      } else {
        shape_rows.emplace_back(text);
      }
      continue;
    }
    const std::string_view text = trim(line);
    if (text.empty() || text.front() == '#') continue;
    const auto fields = split_ws(text);
    if (fields[0] == "module") {
      if (in_module) fail(line_no, "nested module");
      if (fields.size() != 2) fail(line_no, "expected: module <name>");
      current_name = std::string(fields[1]);
      current_shapes.clear();
      in_module = true;
    } else if (fields[0] == "shape") {
      if (!in_module) fail(line_no, "shape outside module");
      in_shape = true;
      shape_start_line = line_no;
    } else if (fields[0] == "endmodule") {
      if (!in_module) fail(line_no, "endmodule without module");
      if (current_shapes.empty()) fail(line_no, "module has no shapes");
      modules.emplace_back(current_name, std::move(current_shapes));
      current_shapes = {};
      in_module = false;
    } else {
      fail(line_no, "unknown directive '" + std::string(fields[0]) + "'");
    }
  }
  if (in_shape) fail(line_no, "unterminated shape");
  if (in_module) fail(line_no, "unterminated module");
  return modules;
}

std::vector<Module> parse_mlf_string(const std::string& text) {
  std::istringstream in(text);
  return parse_mlf(in);
}

std::vector<Module> load_mlf(const std::string& path) {
  std::ifstream in(path);
  RR_REQUIRE(in.good(), "cannot open module library: " + path);
  return parse_mlf(in);
}

void write_mlf(std::ostream& out, std::span<const Module> modules) {
  out << "# rrplace module library\n";
  for (const Module& module : modules) {
    out << "module " << module.name() << '\n';
    for (const ShapeFootprint& shape : module.shapes()) {
      out << "shape\n" << shape_picture(shape) << "endshape\n";
    }
    out << "endmodule\n";
  }
}

std::string write_mlf_string(std::span<const Module> modules) {
  std::ostringstream out;
  write_mlf(out, modules);
  return out.str();
}

void save_mlf(const std::string& path, std::span<const Module> modules) {
  std::ofstream out(path);
  RR_REQUIRE(out.good(), "cannot write module library: " + path);
  write_mlf(out, modules);
}

}  // namespace rr::model
