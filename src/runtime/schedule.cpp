#include "runtime/schedule.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace rr::runtime {

void Schedule::validate(int pool_size) const {
  for (const Phase& phase : phases) {
    std::vector<int> seen;
    for (const int id : phase.active_modules) {
      RR_REQUIRE(id >= 0 && id < pool_size,
                 "phase " + phase.name + " references unknown module " +
                     std::to_string(id));
      RR_REQUIRE(std::find(seen.begin(), seen.end(), id) == seen.end(),
                 "phase " + phase.name + " activates module " +
                     std::to_string(id) + " twice");
      seen.push_back(id);
    }
  }
}

std::vector<int> Schedule::persistent_between(std::size_t a,
                                              std::size_t b) const {
  RR_REQUIRE(a < phases.size() && b < phases.size(),
             "phase index out of range");
  std::vector<int> first = phases[a].active_modules;
  std::vector<int> second = phases[b].active_modules;
  std::sort(first.begin(), first.end());
  std::sort(second.begin(), second.end());
  std::vector<int> out;
  std::set_intersection(first.begin(), first.end(), second.begin(),
                        second.end(), std::back_inserter(out));
  return out;
}

Schedule make_rolling_schedule(int pool_size, int phases, int phase_size,
                               double keep_fraction, std::uint64_t seed) {
  RR_REQUIRE(pool_size > 0 && phases > 0, "schedule dimensions must be > 0");
  RR_REQUIRE(phase_size > 0 && phase_size <= pool_size,
             "phase size must be in [1, pool size]");
  RR_REQUIRE(keep_fraction >= 0.0 && keep_fraction <= 1.0,
             "keep fraction must be in [0, 1]");
  Rng rng(seed);
  Schedule schedule;
  std::vector<int> previous;
  for (int p = 0; p < phases; ++p) {
    Phase phase;
    phase.name = "phase" + std::to_string(p);
    // Keep a random subset of the previous phase...
    std::vector<int> keep = previous;
    rng.shuffle(keep);
    keep.resize(std::min(keep.size(),
                         static_cast<std::size_t>(
                             keep_fraction * static_cast<double>(phase_size))));
    phase.active_modules = keep;
    // ...and fill with random others from the pool.
    std::vector<int> others;
    for (int id = 0; id < pool_size; ++id) {
      if (std::find(keep.begin(), keep.end(), id) == keep.end())
        others.push_back(id);
    }
    rng.shuffle(others);
    for (const int id : others) {
      if (static_cast<int>(phase.active_modules.size()) >= phase_size) break;
      phase.active_modules.push_back(id);
    }
    previous = phase.active_modules;
    schedule.phases.push_back(std::move(phase));
  }
  return schedule;
}

}  // namespace rr::runtime
