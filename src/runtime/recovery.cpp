#include "runtime/recovery.hpp"

#include <algorithm>
#include <array>

#include "geost/object.hpp"
#include "placer/brancher.hpp"
#include "placer/model_builder.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"

namespace rr::runtime {

const char* recovery_tier_name(RecoveryTier tier) noexcept {
  switch (tier) {
    case RecoveryTier::kNone:
      return "parked";
    case RecoveryTier::kInPlaceSwap:
      return "inplace-swap";
    case RecoveryTier::kLocalReplace:
      return "local-replace";
    case RecoveryTier::kDefrag:
      return "defrag";
    case RecoveryTier::kGreedyShake:
      return "greedy-shake";
  }
  return "unknown";
}

FaultRecoveryManager::FaultRecoveryManager(fpga::PartialRegion region,
                                           FaultRecoveryOptions options)
    : region_(std::move(region)),
      faults_(region_.fabric()),
      options_(options),
      initial_available_(region_.total_available()),
      occupied_(region_.height(), region_.width()) {
  if (options_.use_free_space_index)
    index_ = FreeSpaceIndex(FreeSpaceIndex::union_of(region_.masks()));
}

double FaultRecoveryManager::capacity_retained() const {
  if (initial_available_ <= 0) return 0.0;
  return static_cast<double>(healthy_available()) /
         static_cast<double>(initial_available_);
}

double FaultRecoveryManager::utilization() const {
  const long healthy = healthy_available();
  if (healthy <= 0) return 0.0;
  return static_cast<double>(occupied_tiles_) / static_cast<double>(healthy);
}

std::vector<placer::ModulePlacement> FaultRecoveryManager::live_placements()
    const {
  std::vector<placer::ModulePlacement> out;
  out.reserve(live_.size());
  for (const auto& [id, instance] : live_)
    out.push_back(
        placer::ModulePlacement{id, instance.shape, instance.x, instance.y});
  std::sort(out.begin(), out.end(),
            [](const placer::ModulePlacement& a,
               const placer::ModulePlacement& b) {
              return a.module < b.module;
            });
  return out;
}

const model::Module& FaultRecoveryManager::module_of(int instance_id) const {
  if (const auto it = live_.find(instance_id); it != live_.end())
    return it->second.module;
  const auto it = parked_.find(instance_id);
  RR_REQUIRE(it != parked_.end(),
             "instance id " + std::to_string(instance_id) + " is not known");
  return it->second.module;
}

std::vector<geost::ShapeFootprint> FaultRecoveryManager::shapes_of(
    const model::Module& module) const {
  std::vector<geost::ShapeFootprint> shapes;
  if (options_.use_alternatives) shapes = module.shapes();
  else shapes.push_back(module.shapes().front());
  return shapes;
}

bool FaultRecoveryManager::placement_ok(const geost::ShapeFootprint& shape,
                                        int x, int y) const {
  const std::vector<BitMatrix>& masks = region_.masks();
  const std::vector<geost::TypedCells>& typed = shape.typed();
  const std::vector<BitMatrix>& typed_masks = shape.typed_masks();
  for (std::size_t i = 0; i < typed.size(); ++i) {
    const int resource = typed[i].resource;
    if (resource < 0 || resource >= static_cast<int>(masks.size()))
      return false;
    if (!masks[static_cast<std::size_t>(resource)].covers_shifted(
            typed_masks[i], y, x))
      return false;
  }
  return !occupied_.intersects_shifted(shape.mask(), y, x);
}

void FaultRecoveryManager::write_instance(int instance_id,
                                          const model::Module& module,
                                          const Spot& spot) {
  const geost::ShapeFootprint& shape =
      module.shapes()[static_cast<std::size_t>(spot.shape)];
  RR_ASSERT(!occupied_.intersects_shifted(shape.mask(), spot.y, spot.x));
  occupied_.or_shifted(shape.mask(), spot.y, spot.x);
  if (options_.use_free_space_index)
    index_.occupy(shape.mask(), spot.y, spot.x);
  occupied_tiles_ += shape.area();
  live_.insert_or_assign(
      instance_id, LiveInstance{module, spot.shape, spot.x, spot.y});
}

void FaultRecoveryManager::admit(int instance_id, const model::Module& module,
                                 int shape, int x, int y) {
  RR_REQUIRE(!live_.contains(instance_id) && !parked_.contains(instance_id),
             "instance id " + std::to_string(instance_id) + " already known");
  RR_REQUIRE(shape >= 0 &&
                 shape < static_cast<int>(module.shapes().size()),
             "shape index out of range for module " + module.name());
  const geost::ShapeFootprint& footprint =
      module.shapes()[static_cast<std::size_t>(shape)];
  RR_REQUIRE(placement_ok(footprint, x, y),
             "admitted placement of " + module.name() +
                 " overlaps occupied or unavailable tiles");
  write_instance(instance_id, module, Spot{shape, x, y});
}

bool FaultRecoveryManager::try_inplace_swap(
    const std::vector<geost::ShapeFootprint>& shapes, const Rect& old_bbox,
    Spot* out) const {
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    const geost::ShapeFootprint& shape = shapes[s];
    const Rect bb = shape.bounding_box();
    if (bb.width > old_bbox.width || bb.height > old_bbox.height) continue;
    for (int y = old_bbox.y; y + bb.height <= old_bbox.top(); ++y) {
      for (int x = old_bbox.x; x + bb.width <= old_bbox.right(); ++x) {
        if (!placement_ok(shape, x, y)) continue;
        *out = Spot{static_cast<int>(s), x, y};
        return true;
      }
    }
  }
  return false;
}

comm::PinContext FaultRecoveryManager::pin_context_for(
    const model::Module& module) const {
  if (options_.nets == nullptr || options_.comm_weight <= 0 ||
      options_.nets->empty())
    return {};
  std::vector<comm::NamedPin> pins;
  pins.reserve(live_.size());
  // PinContext folds pins into per-net min/max bounds, so the unordered
  // iteration order of live_ cannot affect the result.
  for (const auto& [id, li] : live_) {
    const Rect box = li.footprint().bounding_box();
    pins.push_back(comm::NamedPin{li.module.name(),
                                  comm::center2(box, li.x, li.y)});
  }
  return comm::PinContext::build(*options_.nets, module.name(), pins);
}

bool FaultRecoveryManager::try_first_fit(
    const std::vector<geost::ShapeFootprint>& shapes,
    const std::vector<geost::Placement>& table, const Rect* window,
    const comm::PinContext* comm, Spot* out) const {
  if (comm != nullptr && comm->empty()) comm = nullptr;
  if (options_.use_free_space_index) {
    // Index query: anchors scattered from the (freshly built, so never
    // stale) table, one rectangular decomposition per shape. The windowed
    // bound on best_anchor equals the sweep's contains(bbox) filter.
    std::vector<BitMatrix> anchors(
        shapes.size(), BitMatrix(region_.height(), region_.width()));
    for (const geost::Placement& p : table)
      anchors[static_cast<std::size_t>(p.shape)].set(p.y, p.x, true);
    std::vector<std::vector<Rect>> parts(shapes.size());
    std::vector<AnchorQuery> queries(shapes.size());
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      parts[s] = decompose_mask(shapes[s].mask());
      const Rect box = shapes[s].bounding_box();
      queries[s] = AnchorQuery{&anchors[s], parts[s], box.width, box.height};
    }
    const AnchorCost cost = [&shapes, comm](int s, int x, int y) {
      const Rect box = shapes[static_cast<std::size_t>(s)].bounding_box();
      return comm->cost2(comm::center2(box, x, y));
    };
    const auto pick = index_.best_anchor(
        queries,
        comm != nullptr ? AnchorPolicy::kCommCost : AnchorPolicy::kFirstFit,
        window, comm != nullptr ? &cost : nullptr);
    if (!pick.has_value()) return false;
    *out = Spot{pick->shape, pick->x, pick->y};
    return true;
  }
  if (comm != nullptr) {
    // Sweep arm of the kCommCost policy: full scan reduced by the pinned
    // (cost, x + width, x, y, shape) key — identical order to the index.
    bool found = false;
    std::array<long, 5> best_key{};
    for (const geost::Placement& p : table) {
      const geost::ShapeFootprint& shape =
          shapes[static_cast<std::size_t>(p.shape)];
      const Rect box = shape.bounding_box();
      if (window != nullptr &&
          !window->contains(box.translated(Point{p.x, p.y})))
        continue;
      const std::array<long, 5> key{
          comm->cost2(comm::center2(box, p.x, p.y)), p.x + box.width, p.x,
          p.y, p.shape};
      if (found && !(key < best_key)) continue;
      if (occupied_.intersects_shifted(shape.mask(), p.y, p.x)) continue;
      best_key = key;
      *out = Spot{p.shape, p.x, p.y};
      found = true;
    }
    return found;
  }
  for (const geost::Placement& p : table) {
    const geost::ShapeFootprint& shape =
        shapes[static_cast<std::size_t>(p.shape)];
    if (window != nullptr) {
      const Rect bbox = shape.bounding_box().translated(Point{p.x, p.y});
      if (!window->contains(bbox)) continue;
    }
    if (occupied_.intersects_shifted(shape.mask(), p.y, p.x)) continue;
    *out = Spot{p.shape, p.x, p.y};
    return true;
  }
  return false;
}

bool FaultRecoveryManager::try_defrag(
    int instance_id, const model::Module& module,
    const std::vector<geost::ShapeFootprint>& shapes,
    const std::vector<geost::Placement>& table, const Deadline& deadline,
    bool* deadline_cut, bool* used_greedy, Spot* out) {
  (void)instance_id;
  if (table.empty() || live_.empty()) return false;

  // Blocking-cell heuristic (the online defragmenter's candidate pass):
  // rank relocation sets by how cheap their conflict is to clear.
  struct Candidate {
    std::vector<int> blockers;  // sorted instance ids
    std::size_t blocked_tiles = 0;
  };
  std::vector<Candidate> candidates;
  const std::vector<placer::ModulePlacement> live = live_placements();
  BitMatrix scratch(region_.height(), region_.width());
  const int scan_limit = std::min<int>(options_.max_anchor_scan,
                                       static_cast<int>(table.size()));
  for (int t = 0; t < scan_limit; ++t) {
    if ((t & 31) == 0 && deadline.expired()) break;
    const geost::Placement& p = table[static_cast<std::size_t>(t)];
    const geost::ShapeFootprint& shape =
        shapes[static_cast<std::size_t>(p.shape)];
    scratch.clear();
    scratch.or_shifted(shape.mask(), p.y, p.x);
    Candidate candidate;
    for (const placer::ModulePlacement& inst : live) {
      const LiveInstance& li = live_.at(inst.module);
      const std::size_t overlap = scratch.overlap_popcount_shifted(
          li.footprint().mask(), li.y, li.x);
      if (overlap == 0) continue;
      candidate.blockers.push_back(inst.module);
      candidate.blocked_tiles += overlap;
      if (static_cast<int>(candidate.blockers.size()) >
          options_.max_relocations)
        break;
    }
    if (candidate.blockers.empty() ||
        static_cast<int>(candidate.blockers.size()) > options_.max_relocations)
      continue;
    candidates.push_back(std::move(candidate));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.blockers.size() != b.blockers.size())
                return a.blockers.size() < b.blockers.size();
              if (a.blocked_tiles != b.blocked_tiles)
                return a.blocked_tiles < b.blocked_tiles;
              return a.blockers < b.blockers;
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const Candidate& a, const Candidate& b) {
                                 return a.blockers == b.blockers;
                               }),
                   candidates.end());
  if (candidates.empty()) return false;

  // Exact tier: re-place a relocation set plus the victim via the CP
  // machinery, cheapest set first, under the event's remaining deadline.
  struct Move {
    int instance_id = 0;
    Spot spot;
  };
  const auto commit = [&](const std::vector<Move>& moves, const Spot& spot) {
    // Two passes: a moved instance's new footprint may cover another moved
    // instance's old position.
    std::vector<const Move*> applied;
    applied.reserve(moves.size());
    for (const Move& move : moves) {
      LiveInstance& li = live_.at(move.instance_id);
      if (li.shape == move.spot.shape && li.x == move.spot.x &&
          li.y == move.spot.y)
        continue;  // kept in place: no reconfiguration
      occupied_.clear_shifted(li.footprint().mask(), li.y, li.x);
      if (options_.use_free_space_index)
        index_.release(li.footprint().mask(), li.y, li.x);
      applied.push_back(&move);
    }
    for (const Move* move : applied) {
      LiveInstance& li = live_.at(move->instance_id);
      const long old_area = li.footprint().area();
      li.shape = move->spot.shape;
      li.x = move->spot.x;
      li.y = move->spot.y;
      const geost::ShapeFootprint& new_shape = li.footprint();
      const long new_area = new_shape.area();
      RR_ASSERT(!occupied_.intersects_shifted(new_shape.mask(), li.y, li.x));
      occupied_.or_shifted(new_shape.mask(), li.y, li.x);
      if (options_.use_free_space_index)
        index_.occupy(new_shape.mask(), li.y, li.x);
      occupied_tiles_ += new_area - old_area;
      ++stats_.relocated_modules;
      stats_.relocated_tiles += static_cast<std::uint64_t>(old_area + new_area);
      recovery_cost_.tiles_cleared += old_area;
      recovery_cost_.tiles_written += new_area;
      ++recovery_cost_.modules_loaded;
      RR_METRIC_COUNT("runtime.fault.relocated_modules");
      RR_METRIC_ADD("runtime.fault.relocated_tiles",
                    static_cast<std::uint64_t>(old_area + new_area));
    }
    *out = spot;
  };

  for (const Candidate& candidate : candidates) {
    if (deadline.expired()) {
      *deadline_cut = true;
      break;
    }
    fpga::PartialRegion sub_region = region_;
    BitMatrix others = occupied_;
    for (const int id : candidate.blockers) {
      const LiveInstance& li = live_.at(id);
      others.clear_shifted(li.footprint().mask(), li.y, li.x);
    }
    sub_region.block_mask(others);

    std::vector<model::Module> sub_modules;
    sub_modules.reserve(candidate.blockers.size() + 1);
    for (const int id : candidate.blockers)
      sub_modules.push_back(live_.at(id).module);
    sub_modules.push_back(module);

    const auto sub_tables = placer::prepare_tables(sub_region, sub_modules,
                                                   options_.use_alternatives);
    placer::BuildOptions build_options;
    build_options.use_alternatives = options_.use_alternatives;
    placer::BuiltModel built =
        placer::build_model_from_tables(sub_region, sub_tables, build_options);
    if (built.infeasible) continue;
    const auto brancher = placer::make_placement_brancher(
        built, placer::SearchStrategy::kAreaOrderBottomLeft, options_.seed);
    cp::Search::Options search_options;
    search_options.limits.deadline = deadline;
    cp::Search search(*built.space, *brancher, search_options);
    if (search.next()) {
      std::vector<Move> moves;
      for (std::size_t i = 0; i < candidate.blockers.size(); ++i) {
        const int value = built.space->min(built.placement_vars[i]);
        const geost::Placement& p =
            sub_tables[i].table[static_cast<std::size_t>(value)];
        moves.push_back(Move{candidate.blockers[i], Spot{p.shape, p.x, p.y}});
      }
      const std::size_t last = candidate.blockers.size();
      const int value = built.space->min(built.placement_vars[last]);
      const geost::Placement& request =
          sub_tables[last].table[static_cast<std::size_t>(value)];
      commit(moves, Spot{request.shape, request.x, request.y});
      return true;
    }
    if (!search.stats().complete) {
      *deadline_cut = true;  // the deadline, not exhaustion, stopped it
      break;
    }
    // A completed search refuted this relocation set; try the next one.
  }

  // Greedy bottom-left shake: the degraded mode when the exact tier ran out
  // of time. Lift the cheapest set, first-fit the victim, then the lifted
  // modules by decreasing area.
  if (*deadline_cut) {
    const std::vector<int>& shake_set = candidates.front().blockers;
    BitMatrix shaken = occupied_;
    for (const int id : shake_set) {
      const LiveInstance& li = live_.at(id);
      shaken.clear_shifted(li.footprint().mask(), li.y, li.x);
    }
    std::optional<geost::Placement> request;
    for (const geost::Placement& p : table) {
      const geost::ShapeFootprint& shape =
          shapes[static_cast<std::size_t>(p.shape)];
      if (shaken.intersects_shifted(shape.mask(), p.y, p.x)) continue;
      request = p;
      break;
    }
    if (request.has_value()) {
      const geost::ShapeFootprint& shape =
          shapes[static_cast<std::size_t>(request->shape)];
      shaken.or_shifted(shape.mask(), request->y, request->x);
      std::vector<int> order = shake_set;
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const int area_a = live_.at(a).footprint().area();
        const int area_b = live_.at(b).footprint().area();
        return area_a != area_b ? area_a > area_b : a < b;
      });
      std::vector<Move> moves;
      bool all_placed = true;
      for (const int id : order) {
        const LiveInstance& li = live_.at(id);
        const std::vector<geost::ShapeFootprint> li_shapes =
            shapes_of(li.module);
        std::vector<std::vector<Point>> li_anchors;
        li_anchors.reserve(li_shapes.size());
        for (const geost::ShapeFootprint& s : li_shapes)
          li_anchors.push_back(
              geost::compute_valid_anchors(region_.masks(), s));
        const auto li_table =
            geost::sorted_placement_table(li_shapes, li_anchors);
        bool found = false;
        for (const geost::Placement& p : li_table) {
          const geost::ShapeFootprint& s =
              li_shapes[static_cast<std::size_t>(p.shape)];
          if (shaken.intersects_shifted(s.mask(), p.y, p.x)) continue;
          shaken.or_shifted(s.mask(), p.y, p.x);
          moves.push_back(Move{id, Spot{p.shape, p.x, p.y}});
          found = true;
          break;
        }
        if (!found) {
          all_placed = false;
          break;
        }
      }
      if (all_placed) {
        commit(moves, Spot{request->shape, request->x, request->y});
        *used_greedy = true;
        return true;
      }
    }
  }
  return false;
}

ModuleRecovery FaultRecoveryManager::recover_module(
    int instance_id, const model::Module& module, const Spot* old_spot,
    const Deadline& deadline, bool* deadline_cut) {
  Stopwatch watch;
  ModuleRecovery result;
  result.instance_id = instance_id;
  const std::vector<geost::ShapeFootprint> shapes = shapes_of(module);

  // Tier 0 — in-place shape swap inside the old bounding box. Cheap (a few
  // mask tests), so it runs regardless of the deadline.
  if (old_spot != nullptr) {
    const Rect old_bbox =
        module.shapes()[static_cast<std::size_t>(old_spot->shape)]
            .bounding_box()
            .translated(Point{old_spot->x, old_spot->y});
    Spot spot;
    if (try_inplace_swap(shapes, old_bbox, &spot)) {
      write_instance(instance_id, module, spot);
      result.tier = RecoveryTier::kInPlaceSwap;
      result.recovered = true;
      result.seconds = watch.seconds();
      return result;
    }
  }

  // Tier 1 — local re-place: first-fit inside an inflated window around the
  // old position, then anywhere. One linear pass over the anchor table.
  std::vector<std::vector<Point>> anchors;
  anchors.reserve(shapes.size());
  for (const geost::ShapeFootprint& shape : shapes)
    anchors.push_back(geost::compute_valid_anchors(region_.masks(), shape));
  const auto table = geost::sorted_placement_table(shapes, anchors);
  {
    const comm::PinContext pin_context = pin_context_for(module);
    const comm::PinContext* comm_ctx =
        pin_context.empty() ? nullptr : &pin_context;
    Spot spot;
    bool found = false;
    if (old_spot != nullptr) {
      const Rect old_bbox =
          module.shapes()[static_cast<std::size_t>(old_spot->shape)]
              .bounding_box()
              .translated(Point{old_spot->x, old_spot->y});
      const int m = options_.local_window_margin;
      const Rect window =
          Rect{old_bbox.x - m, old_bbox.y - m, old_bbox.width + 2 * m,
               old_bbox.height + 2 * m}
              .intersection(Rect{0, 0, region_.width(), region_.height()});
      found = try_first_fit(shapes, table, &window, comm_ctx, &spot);
    }
    if (!found) found = try_first_fit(shapes, table, nullptr, comm_ctx, &spot);
    if (found) {
      write_instance(instance_id, module, spot);
      result.tier = RecoveryTier::kLocalReplace;
      result.recovered = true;
      result.seconds = watch.seconds();
      return result;
    }
  }

  // Tier 2 — defrag-assisted relocation under the remaining deadline.
  {
    Spot spot;
    bool used_greedy = false;
    if (try_defrag(instance_id, module, shapes, table, deadline, deadline_cut,
                   &used_greedy, &spot)) {
      write_instance(instance_id, module, spot);
      result.tier =
          used_greedy ? RecoveryTier::kGreedyShake : RecoveryTier::kDefrag;
      result.recovered = true;
      result.seconds = watch.seconds();
      return result;
    }
  }

  result.tier = RecoveryTier::kNone;
  result.seconds = watch.seconds();
  return result;
}

void FaultRecoveryManager::park(int instance_id, model::Module module) {
  const int backoff = std::max(1, options_.retry_backoff_events);
  parked_.insert_or_assign(
      instance_id,
      ParkedInstance{std::move(module), 0, backoff,
                     event_no_ + static_cast<std::uint64_t>(backoff)});
  ++stats_.parked;
  RR_METRIC_COUNT("runtime.fault.parked");
}

void FaultRecoveryManager::retry_parked(const Deadline& deadline,
                                        FaultEventOutcome* outcome,
                                        bool* deadline_cut) {
  std::vector<int> due;
  for (const auto& [id, parked] : parked_) {
    if (parked.retries >= options_.max_retries) continue;
    if (parked.next_retry_event > event_no_) continue;
    due.push_back(id);
  }
  std::sort(due.begin(), due.end());
  for (const int id : due) {
    ++stats_.retries;
    RR_METRIC_COUNT("runtime.fault.retries");
    ModuleRecovery recovery = recover_module(id, parked_.at(id).module,
                                             nullptr, deadline, deadline_cut);
    recovery.from_parked = true;
    if (recovery.recovered) {
      parked_.erase(id);
      ++stats_.retry_recoveries;
      ++outcome->retry_recoveries;
      RR_METRIC_COUNT("runtime.fault.retry_recoveries");
      switch (recovery.tier) {
        case RecoveryTier::kInPlaceSwap:
          ++stats_.inplace_swaps;
          break;
        case RecoveryTier::kLocalReplace:
          ++stats_.local_replaces;
          break;
        case RecoveryTier::kDefrag:
          ++stats_.defrag_recoveries;
          break;
        case RecoveryTier::kGreedyShake:
          ++stats_.greedy_recoveries;
          break;
        case RecoveryTier::kNone:
          break;
      }
      const LiveInstance& li = live_.at(id);
      recovery_cost_.tiles_written += li.footprint().area();
      ++recovery_cost_.modules_loaded;
    } else {
      ParkedInstance& parked = parked_.at(id);
      ++parked.retries;
      if (parked.retries >= options_.max_retries) {
        ++stats_.abandoned;
        RR_METRIC_COUNT("runtime.fault.abandoned");
      } else {
        parked.backoff_events *= 2;
        parked.next_retry_event =
            event_no_ + static_cast<std::uint64_t>(parked.backoff_events);
      }
    }
    outcome->modules.push_back(recovery);
  }
}

FaultEventOutcome FaultRecoveryManager::on_fault(
    const fpga::FaultEvent& event) {
  Stopwatch watch;
  const Deadline deadline(options_.deadline_seconds);
  ++event_no_;
  ++stats_.events;
  RR_METRIC_COUNT("runtime.fault.events");

  FaultEventOutcome outcome;
  const BitMatrix before = region_.fault_mask();
  faults_.apply(event);
  region_.apply_faults(faults_);
  const BitMatrix& after = region_.fault_mask();
  {
    BitMatrix newly = after;
    newly.clear_shifted(before, 0, 0);
    outcome.tiles_faulted = static_cast<long>(newly.popcount());
    BitMatrix repaired = before;
    repaired.clear_shifted(after, 0, 0);
    outcome.tiles_repaired = static_cast<long>(repaired.popcount());
  }
  stats_.tiles_faulted += static_cast<std::uint64_t>(outcome.tiles_faulted);
  RR_METRIC_ADD("runtime.fault.tiles_faulted",
                static_cast<std::uint64_t>(outcome.tiles_faulted));
  // Sync the free-space index with the changed availability masks before
  // any recovery query runs. Victim lifts below then release their cells;
  // cells under a fault stay out of the free set until repaired.
  if (options_.use_free_space_index)
    index_.set_available(FreeSpaceIndex::union_of(region_.masks()));

  // Find every live module the new fault hits, lift them all out of the
  // occupancy (their old tiles are then free for each other's recovery),
  // and recover cheapest-first — smallest area first maximizes the number
  // of modules saved within the deadline.
  struct Victim {
    int id = 0;
    model::Module module;
    Spot old_spot;
    long old_area = 0;
  };
  std::vector<Victim> victims;
  for (const auto& [id, li] : live_) {
    if (!after.intersects_shifted(li.footprint().mask(), li.y, li.x)) continue;
    victims.push_back(Victim{id, li.module, Spot{li.shape, li.x, li.y},
                             li.footprint().area()});
  }
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) {
              return a.old_area != b.old_area ? a.old_area < b.old_area
                                              : a.id < b.id;
            });
  for (const Victim& victim : victims) {
    const LiveInstance& li = live_.at(victim.id);
    occupied_.clear_shifted(li.footprint().mask(), li.y, li.x);
    if (options_.use_free_space_index)
      index_.release(li.footprint().mask(), li.y, li.x);
    occupied_tiles_ -= victim.old_area;
    live_.erase(victim.id);
  }
  outcome.modules_hit = static_cast<int>(victims.size());
  stats_.modules_hit += static_cast<std::uint64_t>(victims.size());
  RR_METRIC_ADD("runtime.fault.modules_hit",
                static_cast<std::uint64_t>(victims.size()));

  bool deadline_cut = false;
  for (const Victim& victim : victims) {
    ModuleRecovery recovery = recover_module(victim.id, victim.module,
                                             &victim.old_spot, deadline,
                                             &deadline_cut);
    if (recovery.recovered) {
      ++outcome.recovered;
      ++stats_.recovered;
      RR_METRIC_COUNT("runtime.fault.recovered");
      switch (recovery.tier) {
        case RecoveryTier::kInPlaceSwap:
          ++stats_.inplace_swaps;
          RR_METRIC_COUNT("runtime.fault.inplace_swaps");
          break;
        case RecoveryTier::kLocalReplace:
          ++stats_.local_replaces;
          RR_METRIC_COUNT("runtime.fault.local_replaces");
          break;
        case RecoveryTier::kDefrag:
          ++stats_.defrag_recoveries;
          RR_METRIC_COUNT("runtime.fault.defrag_recoveries");
          break;
        case RecoveryTier::kGreedyShake:
          ++stats_.greedy_recoveries;
          RR_METRIC_COUNT("runtime.fault.greedy_recoveries");
          break;
        case RecoveryTier::kNone:
          break;
      }
      // No-break copy model: the old footprint is dead (cleared), the new
      // one is written.
      const LiveInstance& li = live_.at(victim.id);
      recovery_cost_.tiles_cleared += victim.old_area;
      recovery_cost_.tiles_written += li.footprint().area();
      ++recovery_cost_.modules_loaded;
    } else {
      park(victim.id, victim.module);
      ++outcome.parked;
      recovery_cost_.tiles_cleared += victim.old_area;
    }
    outcome.modules.push_back(recovery);
  }

  // Parked modules whose backoff elapsed get another chance — repairs and
  // the relocations above may have opened room.
  retry_parked(deadline, &outcome, &deadline_cut);

  if (deadline_cut) {
    ++stats_.deadline_expiries;
    RR_METRIC_COUNT("runtime.fault.deadline_expiries");
  }
  outcome.deadline_expired = deadline_cut;
  outcome.seconds = watch.seconds();
  return outcome;
}

}  // namespace rr::runtime
