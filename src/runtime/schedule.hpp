// Configuration schedules for deterministic runtime reconfigurable systems.
//
// The paper targets "in-advance placement for deterministic run-time
// reconfigurable systems": the sequence of configurations (phases) is known
// at design time, and module placements are computed offline. A Schedule
// names the phases and which modules of a pool are active in each.
#pragma once

#include <string>
#include <vector>

#include "util/error.hpp"

namespace rr::runtime {

struct Phase {
  std::string name;
  /// Indices into the module pool, each at most once per phase.
  std::vector<int> active_modules;
};

struct Schedule {
  std::vector<Phase> phases;

  /// Throws InvalidInput when a phase references a module outside
  /// [0, pool_size) or twice.
  void validate(int pool_size) const;

  /// Modules active in both phases `a` and `b` (sorted).
  [[nodiscard]] std::vector<int> persistent_between(std::size_t a,
                                                    std::size_t b) const;
};

/// A synthetic schedule: `phases` phases over a pool of `pool_size`
/// modules; each phase keeps roughly `keep_fraction` of the previous
/// phase's modules and fills up to `phase_size` with random others.
/// Deterministic in `seed`.
[[nodiscard]] Schedule make_rolling_schedule(int pool_size, int phases,
                                             int phase_size,
                                             double keep_fraction,
                                             std::uint64_t seed);

}  // namespace rr::runtime
