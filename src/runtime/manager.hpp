// Offline placement of configuration schedules, and the reconfiguration
// overhead a system pays at run time.
//
// The cost of runtime reconfiguration "is measured in both area utilization
// and reconfiguration time" (§I). The manager places every phase of a
// schedule and accounts the tiles that must be rewritten at each
// transition (a proxy for partial-bitstream size and thus reconfiguration
// time). Two policies:
//   - kReplaceAll: every phase placed from scratch for maximal utilization;
//     persistent modules may move and must then be reconfigured anyway.
//   - kIncremental: modules surviving a transition keep their placement, so
//     they cost nothing to keep running — at a possible utilization loss.
//   - kDefrag: kIncremental, but a frozen layout that admits no solution
//     first tries relocating a bounded subset of the surviving modules
//     (cheapest-first single unpins) before degrading to a full re-place —
//     the offline counterpart of the online defragmentation pass.
#pragma once

#include <optional>
#include <vector>

#include "fpga/region.hpp"
#include "model/module.hpp"
#include "placer/placer.hpp"
#include "runtime/schedule.hpp"

namespace rr::runtime {

enum class PlacementPolicy { kReplaceAll, kIncremental, kDefrag };

/// One placed module of a phase; `module` is the *pool* index.
struct PlacedModule {
  int module = 0;
  int shape = 0;
  int x = 0;
  int y = 0;

  bool operator==(const PlacedModule&) const = default;
};

struct PhaseOutcome {
  bool feasible = false;
  std::vector<PlacedModule> placements;
  int extent = 0;
  double utilization = 0.0;  // spanned-area utilization
  double seconds = 0.0;
  /// kIncremental/kDefrag only: the frozen placements admitted no solution
  /// and the phase fell back to a full re-place.
  bool fell_back = false;
  /// kDefrag only: number of surviving modules the defrag tier released
  /// from their frozen placement to make the phase feasible (0 when the
  /// fully frozen layout worked or the phase fell back entirely).
  int defrag_unpinned = 0;
};

struct TransitionCost {
  long tiles_written = 0;  // footprints of modules (re)configured
  long tiles_cleared = 0;  // footprints of modules removed or moved away
  int modules_loaded = 0;
  int modules_kept = 0;  // identical placement carried over: no rewrite
};

struct RunResult {
  std::vector<PhaseOutcome> phases;
  /// transitions[k] is the cost of entering phase k (k=0: initial load).
  std::vector<TransitionCost> transitions;

  [[nodiscard]] long total_tiles_written() const;
  /// Mean utilization over the feasible phases; nullopt when *no* phase was
  /// feasible — an explicit no-data signal, distinguishable from a genuine
  /// 0% run (printers render it as "n/a").
  [[nodiscard]] std::optional<double> mean_utilization() const;
  [[nodiscard]] int infeasible_phases() const;
};

class ReconfigurationManager {
 public:
  /// `region` and `pool` must outlive the manager.
  ReconfigurationManager(const fpga::PartialRegion& region,
                         std::span<const model::Module> pool,
                         placer::PlacerOptions solver_options = {});

  [[nodiscard]] RunResult run(const Schedule& schedule,
                              PlacementPolicy policy) const;

  /// Placement tables for the whole pool (pool order), prepared lazily on
  /// first use and reused across phases and runs — region and pool are
  /// fixed for the manager's lifetime, so per-phase anchor scans would be
  /// pure rework. Not thread-safe (like the manager itself).
  [[nodiscard]] placer::TablesHandle pool_tables() const;

  /// Inject shared pool tables instead of preparing them here: the handle
  /// must come from prepare_tables_shared over this manager's region, pool,
  /// and use_alternatives setting (the service layer's SolveContext shares
  /// one preparation across managers this way). Pass nullptr to drop the
  /// cache and re-prepare lazily — required after the region's availability
  /// masks change (e.g. faults).
  void set_pool_tables(placer::TablesHandle tables);

 private:
  [[nodiscard]] PhaseOutcome place_phase(const Phase& phase,
                                         const std::vector<PlacedModule>& frozen,
                                         bool defrag) const;

  const fpga::PartialRegion& region_;
  std::span<const model::Module> pool_;
  placer::PlacerOptions options_;
  mutable placer::TablesHandle pool_tables_;  // lazy; see pool_tables()
};

/// Tiles that must be written/cleared when moving from `before` to `after`
/// (pool module areas from `pool`). Pass an empty `before` for the initial
/// configuration load.
[[nodiscard]] TransitionCost transition_cost(
    std::span<const model::Module> pool,
    const std::vector<PlacedModule>& before,
    const std::vector<PlacedModule>& after);

}  // namespace rr::runtime
