#include "runtime/manager.hpp"

#include <algorithm>

#include "placer/lns.hpp"
#include "placer/metrics.hpp"
#include "util/stopwatch.hpp"

namespace rr::runtime {
namespace {

long footprint_area(std::span<const model::Module> pool,
                    const PlacedModule& p) {
  return pool[static_cast<std::size_t>(p.module)]
      .shapes()[static_cast<std::size_t>(p.shape)]
      .area();
}

}  // namespace

long RunResult::total_tiles_written() const {
  long total = 0;
  for (const TransitionCost& t : transitions) total += t.tiles_written;
  return total;
}

std::optional<double> RunResult::mean_utilization() const {
  double sum = 0.0;
  int feasible = 0;
  for (const PhaseOutcome& p : phases) {
    if (!p.feasible) continue;
    sum += p.utilization;
    ++feasible;
  }
  if (feasible == 0) return std::nullopt;
  return sum / feasible;
}

int RunResult::infeasible_phases() const {
  int count = 0;
  for (const PhaseOutcome& p : phases) count += !p.feasible;
  return count;
}

TransitionCost transition_cost(std::span<const model::Module> pool,
                               const std::vector<PlacedModule>& before,
                               const std::vector<PlacedModule>& after) {
  TransitionCost cost;
  for (const PlacedModule& next : after) {
    const auto prev = std::find_if(
        before.begin(), before.end(),
        [&](const PlacedModule& p) { return p.module == next.module; });
    if (prev != before.end() && *prev == next) {
      ++cost.modules_kept;
      continue;
    }
    ++cost.modules_loaded;
    cost.tiles_written += footprint_area(pool, next);
    if (prev != before.end())
      cost.tiles_cleared += footprint_area(pool, *prev);  // moved: blank old
  }
  for (const PlacedModule& prev : before) {
    const bool still_active = std::any_of(
        after.begin(), after.end(),
        [&](const PlacedModule& p) { return p.module == prev.module; });
    if (!still_active) cost.tiles_cleared += footprint_area(pool, prev);
  }
  return cost;
}

ReconfigurationManager::ReconfigurationManager(
    const fpga::PartialRegion& region, std::span<const model::Module> pool,
    placer::PlacerOptions solver_options)
    : region_(region), pool_(pool), options_(std::move(solver_options)) {
  RR_REQUIRE(!pool_.empty(), "module pool must be non-empty");
}

placer::TablesHandle ReconfigurationManager::pool_tables() const {
  if (pool_tables_ == nullptr)
    pool_tables_ = placer::prepare_tables_shared(region_, pool_,
                                                 options_.use_alternatives);
  return pool_tables_;
}

void ReconfigurationManager::set_pool_tables(placer::TablesHandle tables) {
  RR_REQUIRE(tables == nullptr || tables->size() == pool_.size(),
             "pool tables must cover exactly the module pool");
  pool_tables_ = std::move(tables);
}

PhaseOutcome ReconfigurationManager::place_phase(
    const Phase& phase, const std::vector<PlacedModule>& frozen,
    bool defrag) const {
  Stopwatch watch;
  PhaseOutcome outcome;
  if (phase.active_modules.empty()) {
    outcome.feasible = true;
    outcome.seconds = watch.seconds();
    return outcome;
  }
  std::vector<model::Module> modules;
  modules.reserve(phase.active_modules.size());
  for (const int id : phase.active_modules)
    modules.push_back(pool_[static_cast<std::size_t>(id)]);

  const Deadline deadline(options_.time_limit_seconds);
  // Slice the cached pool-wide tables for this phase's active set: the
  // entries are prepared per module independently, so the slice is
  // bit-identical to a per-phase prepare_tables over `modules`.
  const placer::TablesHandle pool_tables = this->pool_tables();
  std::vector<placer::ModuleTables> tables;
  tables.reserve(phase.active_modules.size());
  for (const int id : phase.active_modules)
    tables.push_back((*pool_tables)[static_cast<std::size_t>(id)]);

  // Locate the frozen modules' previous placements in this phase's tables.
  std::vector<bool> frozen_mask(modules.size(), false);
  std::vector<int> frozen_value(modules.size(), -1);
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const int id = phase.active_modules[i];
    const auto prev = std::find_if(
        frozen.begin(), frozen.end(),
        [&](const PlacedModule& p) { return p.module == id; });
    if (prev == frozen.end()) continue;
    for (std::size_t v = 0; v < tables[i].table.size(); ++v) {
      const geost::Placement& p = tables[i].table[v];
      if (p.shape == prev->shape && p.x == prev->x && p.y == prev->y) {
        frozen_mask[i] = true;
        frozen_value[i] = static_cast<int>(v);
        break;
      }
    }
  }

  placer::BuildOptions build_options;
  build_options.use_alternatives = options_.use_alternatives;
  build_options.nonoverlap = options_.nonoverlap;
  build_options.area_bound = options_.area_bound;

  // Pin tiers: first the frozen placements as-is; for kDefrag, then each
  // single unpin (cheapest relocation first); finally a free re-place of
  // the whole phase.
  const bool any_frozen = std::any_of(
      frozen_mask.begin(), frozen_mask.end(), [](bool f) { return f; });
  // Symmetry breaking orders the placement rows of identical modules, but
  // a frozen placement carried over from the previous phase need not obey
  // that order — composing the two wrongly refutes feasible pin attempts
  // (and LNS neighborhoods around them).
  if (any_frozen) build_options.break_symmetries = false;
  struct Attempt {
    std::vector<bool> pins;
    bool free_replace = false;
    int unpinned = 0;
  };
  std::vector<Attempt> attempts;
  attempts.push_back(Attempt{frozen_mask, false, 0});
  if (any_frozen && defrag) {
    // Unpin candidates in increasing footprint area: relocating a small
    // module costs the fewest tiles in the no-break copy model.
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < modules.size(); ++i)
      if (frozen_mask[i]) candidates.push_back(i);
    const auto frozen_area = [&](std::size_t i) {
      const geost::Placement& p =
          tables[i].table[static_cast<std::size_t>(frozen_value[i])];
      return (*tables[i].shapes)[static_cast<std::size_t>(p.shape)].area();
    };
    std::sort(candidates.begin(), candidates.end(),
              [&](std::size_t a, std::size_t b) {
                const int area_a = frozen_area(a);
                const int area_b = frozen_area(b);
                return area_a != area_b ? area_a < area_b : a < b;
              });
    for (const std::size_t i : candidates) {
      Attempt attempt{frozen_mask, false, 1};
      attempt.pins[i] = false;
      attempts.push_back(std::move(attempt));
    }
  }
  if (any_frozen) attempts.push_back(Attempt{{}, true, 0});

  std::vector<int> incumbent;
  for (const Attempt& attempt : attempts) {
    placer::BuiltModel model =
        placer::build_model_from_tables(region_, tables, build_options);
    if (model.infeasible) break;
    if (!attempt.free_replace) {
      for (std::size_t i = 0; i < modules.size(); ++i) {
        if (attempt.pins[i])
          model.space->assign(model.placement_vars[i], frozen_value[i]);
      }
    }
    auto brancher = placer::make_placement_brancher(
        model, options_.strategy, options_.seed);
    cp::Search::Options search_options;
    search_options.objective = model.objective;
    search_options.limits.deadline = deadline;
    cp::Search search(*model.space, *brancher, search_options);
    if (search.next()) {
      incumbent.clear();
      for (cp::VarId v : model.placement_vars)
        incumbent.push_back(model.space->min(v));
      if (attempt.free_replace) {
        outcome.fell_back = true;
        std::fill(frozen_mask.begin(), frozen_mask.end(), false);
      } else {
        outcome.defrag_unpinned = attempt.unpinned;
        frozen_mask = attempt.pins;
      }
      break;
    }
  }
  if (incumbent.empty()) {
    outcome.seconds = watch.seconds();
    return outcome;  // infeasible
  }

  // Improve with LNS, keeping the pinned modules pinned.
  placer::LnsOptions lns_options;
  lns_options.seed = options_.seed ^ 0x5EEDULL;
  lns_options.fails_per_iteration = options_.lns_fails_per_iteration;
  lns_options.frozen.assign(frozen_mask.begin(), frozen_mask.end());
  const placer::LnsResult lns = placer::improve_lns(
      region_, tables, incumbent, build_options, lns_options, deadline);

  outcome.feasible = true;
  placer::PlacementSolution solution;
  solution.feasible = true;
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const geost::Placement& p =
        tables[i].table[static_cast<std::size_t>(lns.placement_values[i])];
    outcome.placements.push_back(PlacedModule{
        phase.active_modules[i], p.shape, p.x, p.y});
    solution.placements.push_back(placer::ModulePlacement{
        static_cast<int>(i), p.shape, p.x, p.y});
    solution.extent = std::max(
        solution.extent, tables[i].extents[static_cast<std::size_t>(
                             lns.placement_values[i])]);
  }
  outcome.extent = solution.extent;
  outcome.utilization =
      placer::spanned_utilization(region_, modules, solution);
  outcome.seconds = watch.seconds();
  return outcome;
}

RunResult ReconfigurationManager::run(const Schedule& schedule,
                                      PlacementPolicy policy) const {
  schedule.validate(static_cast<int>(pool_.size()));
  RunResult result;
  std::vector<PlacedModule> previous;
  for (const Phase& phase : schedule.phases) {
    const std::vector<PlacedModule> frozen =
        policy == PlacementPolicy::kReplaceAll ? std::vector<PlacedModule>{}
                                               : previous;
    PhaseOutcome outcome =
        place_phase(phase, frozen, policy == PlacementPolicy::kDefrag);
    result.transitions.push_back(
        transition_cost(pool_, previous, outcome.placements));
    previous = outcome.placements;
    result.phases.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace rr::runtime
