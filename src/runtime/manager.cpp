#include "runtime/manager.hpp"

#include <algorithm>

#include "placer/lns.hpp"
#include "placer/metrics.hpp"
#include "util/stopwatch.hpp"

namespace rr::runtime {
namespace {

long footprint_area(std::span<const model::Module> pool,
                    const PlacedModule& p) {
  return pool[static_cast<std::size_t>(p.module)]
      .shapes()[static_cast<std::size_t>(p.shape)]
      .area();
}

}  // namespace

long RunResult::total_tiles_written() const {
  long total = 0;
  for (const TransitionCost& t : transitions) total += t.tiles_written;
  return total;
}

double RunResult::mean_utilization() const {
  double sum = 0.0;
  int feasible = 0;
  for (const PhaseOutcome& p : phases) {
    if (!p.feasible) continue;
    sum += p.utilization;
    ++feasible;
  }
  return feasible > 0 ? sum / feasible : 0.0;
}

int RunResult::infeasible_phases() const {
  int count = 0;
  for (const PhaseOutcome& p : phases) count += !p.feasible;
  return count;
}

TransitionCost transition_cost(std::span<const model::Module> pool,
                               const std::vector<PlacedModule>& before,
                               const std::vector<PlacedModule>& after) {
  TransitionCost cost;
  for (const PlacedModule& next : after) {
    const auto prev = std::find_if(
        before.begin(), before.end(),
        [&](const PlacedModule& p) { return p.module == next.module; });
    if (prev != before.end() && *prev == next) {
      ++cost.modules_kept;
      continue;
    }
    ++cost.modules_loaded;
    cost.tiles_written += footprint_area(pool, next);
    if (prev != before.end())
      cost.tiles_cleared += footprint_area(pool, *prev);  // moved: blank old
  }
  for (const PlacedModule& prev : before) {
    const bool still_active = std::any_of(
        after.begin(), after.end(),
        [&](const PlacedModule& p) { return p.module == prev.module; });
    if (!still_active) cost.tiles_cleared += footprint_area(pool, prev);
  }
  return cost;
}

ReconfigurationManager::ReconfigurationManager(
    const fpga::PartialRegion& region, std::span<const model::Module> pool,
    placer::PlacerOptions solver_options)
    : region_(region), pool_(pool), options_(std::move(solver_options)) {
  RR_REQUIRE(!pool_.empty(), "module pool must be non-empty");
}

PhaseOutcome ReconfigurationManager::place_phase(
    const Phase& phase, const std::vector<PlacedModule>& frozen) const {
  Stopwatch watch;
  PhaseOutcome outcome;
  if (phase.active_modules.empty()) {
    outcome.feasible = true;
    outcome.seconds = watch.seconds();
    return outcome;
  }
  std::vector<model::Module> modules;
  modules.reserve(phase.active_modules.size());
  for (const int id : phase.active_modules)
    modules.push_back(pool_[static_cast<std::size_t>(id)]);

  const Deadline deadline(options_.time_limit_seconds);
  const auto tables =
      placer::prepare_tables(region_, modules, options_.use_alternatives);

  // Locate the frozen modules' previous placements in this phase's tables.
  std::vector<bool> frozen_mask(modules.size(), false);
  std::vector<int> frozen_value(modules.size(), -1);
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const int id = phase.active_modules[i];
    const auto prev = std::find_if(
        frozen.begin(), frozen.end(),
        [&](const PlacedModule& p) { return p.module == id; });
    if (prev == frozen.end()) continue;
    for (std::size_t v = 0; v < tables[i].table.size(); ++v) {
      const geost::Placement& p = tables[i].table[v];
      if (p.shape == prev->shape && p.x == prev->x && p.y == prev->y) {
        frozen_mask[i] = true;
        frozen_value[i] = static_cast<int>(v);
        break;
      }
    }
  }

  placer::BuildOptions build_options;
  build_options.use_alternatives = options_.use_alternatives;
  build_options.nonoverlap = options_.nonoverlap;
  build_options.area_bound = options_.area_bound;

  // First descent with the frozen placements pinned; on failure, fall back
  // to a free re-place of the whole phase.
  std::vector<int> incumbent;
  bool used_freeze = false;
  for (const bool pin : {true, false}) {
    if (!pin) {
      const bool any_frozen =
          std::any_of(frozen_mask.begin(), frozen_mask.end(),
                      [](bool f) { return f; });
      if (!any_frozen && used_freeze) break;  // nothing differed
    }
    placer::BuiltModel model =
        placer::build_model_from_tables(region_, tables, build_options);
    if (model.infeasible) break;
    if (pin) {
      used_freeze = true;
      for (std::size_t i = 0; i < modules.size(); ++i) {
        if (frozen_mask[i])
          model.space->assign(model.placement_vars[i], frozen_value[i]);
      }
    }
    auto brancher = placer::make_placement_brancher(
        model, options_.strategy, options_.seed);
    cp::Search::Options search_options;
    search_options.objective = model.objective;
    search_options.limits.deadline = deadline;
    cp::Search search(*model.space, *brancher, search_options);
    if (search.next()) {
      incumbent.clear();
      for (cp::VarId v : model.placement_vars)
        incumbent.push_back(model.space->min(v));
      if (!pin) {
        outcome.fell_back = true;
        std::fill(frozen_mask.begin(), frozen_mask.end(), false);
      }
      break;
    }
    if (!pin) break;  // even the free re-place failed: infeasible phase
  }
  if (incumbent.empty()) {
    outcome.seconds = watch.seconds();
    return outcome;  // infeasible
  }

  // Improve with LNS, keeping the pinned modules pinned.
  placer::LnsOptions lns_options;
  lns_options.seed = options_.seed ^ 0x5EEDULL;
  lns_options.fails_per_iteration = options_.lns_fails_per_iteration;
  lns_options.frozen.assign(frozen_mask.begin(), frozen_mask.end());
  const placer::LnsResult lns = placer::improve_lns(
      region_, tables, incumbent, build_options, lns_options, deadline);

  outcome.feasible = true;
  placer::PlacementSolution solution;
  solution.feasible = true;
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const geost::Placement& p =
        tables[i].table[static_cast<std::size_t>(lns.placement_values[i])];
    outcome.placements.push_back(PlacedModule{
        phase.active_modules[i], p.shape, p.x, p.y});
    solution.placements.push_back(placer::ModulePlacement{
        static_cast<int>(i), p.shape, p.x, p.y});
    solution.extent = std::max(
        solution.extent, tables[i].extents[static_cast<std::size_t>(
                             lns.placement_values[i])]);
  }
  outcome.extent = solution.extent;
  outcome.utilization =
      placer::spanned_utilization(region_, modules, solution);
  outcome.seconds = watch.seconds();
  return outcome;
}

RunResult ReconfigurationManager::run(const Schedule& schedule,
                                      PlacementPolicy policy) const {
  schedule.validate(static_cast<int>(pool_.size()));
  RunResult result;
  std::vector<PlacedModule> previous;
  for (const Phase& phase : schedule.phases) {
    const std::vector<PlacedModule> frozen =
        policy == PlacementPolicy::kIncremental
            ? previous
            : std::vector<PlacedModule>{};
    PhaseOutcome outcome = place_phase(phase, frozen);
    result.transitions.push_back(
        transition_cost(pool_, previous, outcome.placements));
    previous = outcome.placements;
    result.phases.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace rr::runtime
