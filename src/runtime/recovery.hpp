// Fault-aware recovery: keep a configured system running while the fabric
// degrades underneath it.
//
// A FaultRecoveryManager owns a mutable copy of the partial region and a
// FaultMap over its fabric. Fault events (tile / column / cluster
// injections, repairs) update the map and the region's availability masks;
// every live module whose footprint a new fault hits is then re-placed
// through an escalation ladder under a per-event deadline:
//
//   tier 0 — in-place shape swap: a design alternative that fits inside the
//            module's current bounding box and avoids the faulty tiles.
//            Cheapest possible recovery: no other module is disturbed and
//            the reconfiguration stays inside the old footprint.
//   tier 1 — local re-place: first-fit of any alternative inside a window
//            around the old position, then anywhere in the region.
//   tier 2 — defrag-assisted relocation: relocate a bounded set of healthy
//            live modules together with the victim via the exact CP
//            machinery (the online defragmenter's blocking-cell pass);
//            degrades to a greedy bottom-left shake when the deadline cuts
//            the search.
//
// Degradation is graceful: a module that no tier can save is *parked* —
// removed from the fabric, retried with exponential backoff over later
// events (bounded retries), while capacity accounting shrinks to the
// healthy area and service continues. Nothing in the pipeline aborts on
// capacity exhaustion.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "comm/net.hpp"
#include "fpga/faults.hpp"
#include "fpga/region.hpp"
#include "geo/free_space.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"
#include "runtime/manager.hpp"

namespace rr::runtime {

struct FaultRecoveryOptions {
  /// Wall-clock budget per fault event; <= 0 means unlimited. Tier 0/1 are
  /// cheap and always run; the exact defrag tier honors the remainder and
  /// degrades to the greedy shake when it expires.
  double deadline_seconds = 0.25;
  /// Consider design alternatives (the escape shapes that let a module
  /// route around a dead tile) or base layouts only.
  bool use_alternatives = true;
  /// Tier-1 window: the old bounding box inflated by this many tiles.
  int local_window_margin = 6;
  /// Defrag tier: largest relocation set (healthy modules moved per pass).
  int max_relocations = 3;
  /// Defrag tier: candidate anchors scanned for relocation sets.
  int max_anchor_scan = 128;
  /// Serve the tier-1 local/global re-place queries from the incremental
  /// maximal-empty-rectangle index (geo/free_space) instead of sweeping the
  /// anchor table against the occupancy bitmap. Recovery outcomes are
  /// bit-identical either way; false keeps the sweep (the differential
  /// oracle) and skips all index maintenance.
  bool use_free_space_index = true;
  /// Parked-module retries before the module is abandoned (permanently
  /// degraded capacity).
  int max_retries = 3;
  /// Initial retry backoff in events; doubles after every failed retry.
  int retry_backoff_events = 2;
  /// Seed for the exact tier's search.
  std::uint64_t seed = 1;
  /// Optional inter-module nets: with comm_weight > 0 the tier-1 re-place
  /// picks the feasible spot of minimal communication cost against the
  /// surviving live modules (ties broken by the first-fit key) instead of
  /// plain first fit, so relocation does not needlessly separate chatty
  /// pairs. Both the free-space-index and the sweep arm implement the same
  /// pinned order, so the differential oracle holds. Null/empty nets or
  /// comm_weight <= 0 keeps recovery byte-identical to the area-only path
  /// (the zero-weight oracle).
  std::shared_ptr<const comm::NetList> nets;
  long comm_weight = 0;
};

enum class RecoveryTier {
  kNone,         // not recovered: parked
  kInPlaceSwap,  // tier 0
  kLocalReplace, // tier 1
  kDefrag,       // tier 2, exact
  kGreedyShake,  // tier 2, deadline-degraded
};

[[nodiscard]] const char* recovery_tier_name(RecoveryTier tier) noexcept;

/// One module's recovery attempt within an event.
struct ModuleRecovery {
  int instance_id = 0;
  RecoveryTier tier = RecoveryTier::kNone;
  bool recovered = false;
  bool from_parked = false;  // a parked module revived by the retry pass
  double seconds = 0.0;
};

struct FaultEventOutcome {
  long tiles_faulted = 0;   // available tiles newly lost to this event
  long tiles_repaired = 0;  // previously faulty tiles returned to service
  int modules_hit = 0;
  int recovered = 0;
  int parked = 0;
  int retry_recoveries = 0;
  bool deadline_expired = false;
  double seconds = 0.0;
  std::vector<ModuleRecovery> modules;
};

/// Lifetime telemetry; mirrored into rr::metrics under "runtime.fault.*"
/// while collection is enabled.
struct FaultRecoveryStats {
  std::uint64_t events = 0;
  std::uint64_t tiles_faulted = 0;
  std::uint64_t modules_hit = 0;
  std::uint64_t recovered = 0;
  std::uint64_t inplace_swaps = 0;
  std::uint64_t local_replaces = 0;
  std::uint64_t defrag_recoveries = 0;
  std::uint64_t greedy_recoveries = 0;
  std::uint64_t parked = 0;            // park transitions
  std::uint64_t retries = 0;           // parked-module retry attempts
  std::uint64_t retry_recoveries = 0;  // ... that revived the module
  std::uint64_t abandoned = 0;         // retries exhausted
  std::uint64_t deadline_expiries = 0;
  std::uint64_t relocated_modules = 0;  // healthy bystanders moved (tier 2)
  std::uint64_t relocated_tiles = 0;    // their cleared + written tiles
};

class FaultRecoveryManager {
 public:
  /// Takes its own copy of the region: the fault overlay mutates it.
  explicit FaultRecoveryManager(fpga::PartialRegion region,
                                FaultRecoveryOptions options = {});

  /// Admit a live module at a placement (the initial configuration load).
  /// Throws InvalidInput when the id is already known, the shape index is
  /// out of range, or the footprint overlaps occupied/unavailable tiles.
  void admit(int instance_id, const model::Module& module, int shape, int x,
             int y);

  /// Apply one fault event and recover every module it displaced; then
  /// retry parked modules whose backoff has elapsed. Never throws on
  /// capacity exhaustion — unrecoverable modules are parked.
  FaultEventOutcome on_fault(const fpga::FaultEvent& event);

  [[nodiscard]] const fpga::PartialRegion& region() const noexcept {
    return region_;
  }
  [[nodiscard]] const fpga::FaultMap& fault_map() const noexcept {
    return faults_;
  }
  [[nodiscard]] const FaultRecoveryStats& stats() const noexcept {
    return stats_;
  }
  /// Reconfiguration cost of all recoveries and relocations, in the
  /// no-break copy model (cleared old footprints + written new ones).
  [[nodiscard]] const TransitionCost& recovery_cost() const noexcept {
    return recovery_cost_;
  }

  [[nodiscard]] int live_count() const noexcept {
    return static_cast<int>(live_.size());
  }
  [[nodiscard]] int parked_count() const noexcept {
    return static_cast<int>(parked_.size());
  }
  [[nodiscard]] bool is_live(int instance_id) const noexcept {
    return live_.contains(instance_id);
  }
  [[nodiscard]] bool is_parked(int instance_id) const noexcept {
    return parked_.contains(instance_id);
  }
  [[nodiscard]] long occupied_tiles() const noexcept {
    return occupied_tiles_;
  }
  [[nodiscard]] const BitMatrix& occupied_matrix() const noexcept {
    return occupied_;
  }
  /// Current placement of every live instance (ModulePlacement::module is
  /// the instance id), sorted by id.
  [[nodiscard]] std::vector<placer::ModulePlacement> live_placements() const;
  /// The module an instance id was admitted with (live or parked).
  [[nodiscard]] const model::Module& module_of(int instance_id) const;

  /// Capacity accounting. healthy_available() shrinks as faults accumulate;
  /// capacity_retained() is its fraction of the fault-free capacity;
  /// utilization() is occupancy over the *healthy* area (graceful
  /// degradation: a fully-parked system on a dead fabric reports 0/0 -> 0).
  [[nodiscard]] long healthy_available() const {
    return region_.total_available();
  }
  [[nodiscard]] double capacity_retained() const;
  [[nodiscard]] double utilization() const;

 private:
  struct LiveInstance {
    model::Module module;  // owned copy: recovery re-places alternatives
    int shape = 0;
    int x = 0;
    int y = 0;

    [[nodiscard]] const geost::ShapeFootprint& footprint() const noexcept {
      return module.shapes()[static_cast<std::size_t>(shape)];
    }
  };
  struct ParkedInstance {
    model::Module module;
    int retries = 0;
    int backoff_events = 0;
    std::uint64_t next_retry_event = 0;
  };
  struct Spot {
    int shape = 0;
    int x = 0;
    int y = 0;
  };

  [[nodiscard]] std::vector<geost::ShapeFootprint> shapes_of(
      const model::Module& module) const;
  /// Resource compatibility against the (fault-aware) region masks plus
  /// occupancy vacancy.
  [[nodiscard]] bool placement_ok(const geost::ShapeFootprint& shape, int x,
                                  int y) const;
  void write_instance(int instance_id, const model::Module& module,
                      const Spot& spot);

  /// The escalation ladder. `old_spot` is null for parked retries (tier 0
  /// and the tier-1 window need a previous position). The caller must have
  /// lifted the module out of occupancy and live_ already.
  [[nodiscard]] ModuleRecovery recover_module(int instance_id,
                                              const model::Module& module,
                                              const Spot* old_spot,
                                              const Deadline& deadline,
                                              bool* deadline_cut);

  [[nodiscard]] bool try_inplace_swap(
      const std::vector<geost::ShapeFootprint>& shapes, const Rect& old_bbox,
      Spot* out) const;
  /// Tier-1 spot search: first fit, or — when `comm` is non-null and
  /// non-empty — minimal communication cost with first-fit tie-breaking.
  [[nodiscard]] bool try_first_fit(
      const std::vector<geost::ShapeFootprint>& shapes,
      const std::vector<geost::Placement>& table, const Rect* window,
      const comm::PinContext* comm, Spot* out) const;
  /// Communication context of `module` against every live instance (the
  /// victim is already lifted out of live_ by the recovery contract).
  /// Empty when nets are absent, comm_weight <= 0, or no live net partner
  /// pins the module anywhere.
  [[nodiscard]] comm::PinContext pin_context_for(
      const model::Module& module) const;
  [[nodiscard]] bool try_defrag(
      int instance_id, const model::Module& module,
      const std::vector<geost::ShapeFootprint>& shapes,
      const std::vector<geost::Placement>& table, const Deadline& deadline,
      bool* deadline_cut, bool* used_greedy, Spot* out);

  void park(int instance_id, model::Module module);
  void retry_parked(const Deadline& deadline, FaultEventOutcome* outcome,
                    bool* deadline_cut);

  fpga::PartialRegion region_;
  fpga::FaultMap faults_;
  FaultRecoveryOptions options_;
  long initial_available_ = 0;
  BitMatrix occupied_;
  /// Mirrors occupied_ against the fault-aware union availability; synced
  /// with every occupancy mutation and every fault/repair overlay change
  /// while options_.use_free_space_index.
  FreeSpaceIndex index_;
  long occupied_tiles_ = 0;
  std::unordered_map<int, LiveInstance> live_;
  std::unordered_map<int, ParkedInstance> parked_;
  std::uint64_t event_no_ = 0;
  FaultRecoveryStats stats_{};
  TransitionCost recovery_cost_{};
};

}  // namespace rr::runtime
