#include "render/ascii.hpp"

#include <cctype>
#include <vector>

#include "geost/footprint.hpp"

namespace rr::render {
namespace {

constexpr std::string_view kModuleChars =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789abcdefghijklmnopqrstuvwxyz";

/// Character grid with region background, top row emitted first.
std::vector<std::string> background(const fpga::PartialRegion& region) {
  std::vector<std::string> rows(
      static_cast<std::size_t>(region.height()),
      std::string(static_cast<std::size_t>(region.width()), '#'));
  for (int y = 0; y < region.height(); ++y) {
    for (int x = 0; x < region.width(); ++x) {
      char ch = '#';
      if (region.available(x, y)) {
        ch = static_cast<char>(
            std::tolower(static_cast<unsigned char>(
                fpga::resource_char(region.at(x, y)))));
      }
      rows[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = ch;
    }
  }
  return rows;
}

std::string flush(const std::vector<std::string>& rows) {
  std::string out;
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
    out += *it;
    out.push_back('\n');
  }
  return out;
}

}  // namespace

char module_char(int index) noexcept {
  if (index < 0) return '?';
  return kModuleChars[static_cast<std::size_t>(index) % kModuleChars.size()];
}

std::string region_ascii(const fpga::PartialRegion& region) {
  return flush(background(region));
}

std::string placement_ascii(const fpga::PartialRegion& region,
                            std::span<const model::Module> modules,
                            const placer::PlacementSolution& solution) {
  std::vector<std::string> rows = background(region);
  if (solution.feasible) {
    for (const placer::ModulePlacement& p : solution.placements) {
      const geost::ShapeFootprint& shape =
          modules[static_cast<std::size_t>(p.module)]
              .shapes()[static_cast<std::size_t>(p.shape)];
      const char ch = module_char(p.module);
      for (const Point& cell : shape.all_cells().cells()) {
        const int x = cell.x + p.x;
        const int y = cell.y + p.y;
        if (y >= 0 && y < region.height() && x >= 0 && x < region.width())
          rows[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = ch;
      }
    }
  }
  return flush(rows);
}

std::string anchor_mask_ascii(const fpga::PartialRegion& region,
                              const geost::ShapeFootprint& shape) {
  std::vector<std::string> rows = background(region);
  for (const Point& anchor :
       geost::compute_valid_anchors(region.masks(), shape)) {
    rows[static_cast<std::size_t>(anchor.y)][static_cast<std::size_t>(anchor.x)] =
        '*';
  }
  return flush(rows);
}

std::string legend() {
  return "legend: c=CLB b=BRAM d=DSP i=IO k=clock m=bus-macro (free, "
         "lower-case)  "
         "#=static/blocked  *=valid anchor  A..Z0..9a..z=placed modules\n";
}

}  // namespace rr::render
