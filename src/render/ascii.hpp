// ASCII rendering of fabrics, regions, anchor masks and placements —
// regenerates the visual artifacts of Figures 1, 3, 4 and 5 on a terminal.
//
// Legend: free tiles print as lower-case resource characters ('c' CLB,
// 'b' BRAM, 'd' DSP, 'i' IO, 'k' clock), static/blocked tiles as '#',
// placed modules as an upper-case letter / digit cycle, valid anchors as
// '*'. The top row of the picture is the highest y.
#pragma once

#include <span>
#include <string>

#include "fpga/region.hpp"
#include "geost/footprint.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"

namespace rr::render {

/// Character used for module `index` in placement pictures.
[[nodiscard]] char module_char(int index) noexcept;

/// The bare region: resources and blocked tiles.
[[nodiscard]] std::string region_ascii(const fpga::PartialRegion& region);

/// Region with a placement drawn over it (Figures 3 and 5).
[[nodiscard]] std::string placement_ascii(
    const fpga::PartialRegion& region,
    std::span<const model::Module> modules,
    const placer::PlacementSolution& solution);

/// Region with every valid anchor of `shape` marked '*' (Figure 4b).
[[nodiscard]] std::string anchor_mask_ascii(const fpga::PartialRegion& region,
                                            const geost::ShapeFootprint& shape);

/// The legend string matching the pictures above.
[[nodiscard]] std::string legend();

}  // namespace rr::render
