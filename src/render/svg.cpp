#include "render/svg.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace rr::render {
namespace {

std::string resource_fill(fpga::ResourceType t) {
  switch (t) {
    case fpga::ResourceType::kClb: return "#f2f2f2";
    case fpga::ResourceType::kBram: return "#cfe3ff";
    case fpga::ResourceType::kDsp: return "#ffe9c7";
    case fpga::ResourceType::kIo: return "#e4d7f5";
    case fpga::ResourceType::kClock: return "#f8d7da";
    case fpga::ResourceType::kBusMacro: return "#d9f2d9";
    case fpga::ResourceType::kStatic: return "#555555";
    case fpga::ResourceType::kCount: break;
  }
  return "#ffffff";
}

/// Evenly spaced hues; module index -> solid fill color.
std::string module_fill(int index) {
  const double hue = std::fmod(static_cast<double>(index) * 47.0, 360.0);
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "hsl(%.0f, 65%%, 55%%)", hue);
  return buffer;
}

}  // namespace

std::string placement_svg(const fpga::PartialRegion& region,
                          std::span<const model::Module> modules,
                          const placer::PlacementSolution& solution,
                          const SvgOptions& options) {
  const int t = options.tile_pixels;
  const int width_px = region.width() * t;
  const int height_px = region.height() * t;
  // y is flipped: tile row 0 is the bottom of the picture.
  auto tile_rect = [&](int x, int y, const std::string& fill,
                       const std::string& extra = "") {
    std::ostringstream os;
    os << "  <rect x=\"" << x * t << "\" y=\"" << (region.height() - 1 - y) * t
       << "\" width=\"" << t << "\" height=\"" << t << "\" fill=\"" << fill
       << "\"" << extra << "/>\n";
    return os.str();
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px
      << "\" height=\"" << height_px << "\" viewBox=\"0 0 " << width_px << ' '
      << height_px << "\">\n";
  const std::string grid_attr =
      options.draw_grid ? " stroke=\"#bbbbbb\" stroke-width=\"0.5\"" : "";
  for (int y = 0; y < region.height(); ++y) {
    for (int x = 0; x < region.width(); ++x) {
      const std::string fill = region.available(x, y)
                                   ? resource_fill(region.at(x, y))
                                   : resource_fill(fpga::ResourceType::kStatic);
      svg << tile_rect(x, y, fill, grid_attr);
    }
  }
  if (solution.feasible) {
    for (const placer::ModulePlacement& p : solution.placements) {
      const auto& shape = modules[static_cast<std::size_t>(p.module)]
                              .shapes()[static_cast<std::size_t>(p.shape)];
      const std::string fill = module_fill(p.module);
      for (const Point& cell : shape.all_cells().cells())
        svg << tile_rect(cell.x + p.x, cell.y + p.y, fill,
                         " stroke=\"#333333\" stroke-width=\"0.4\"");
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

void save_placement_svg(const std::string& path,
                        const fpga::PartialRegion& region,
                        std::span<const model::Module> modules,
                        const placer::PlacementSolution& solution,
                        const SvgOptions& options) {
  std::ofstream out(path);
  RR_REQUIRE(out.good(), "cannot write SVG file: " + path);
  out << placement_svg(region, modules, solution, options);
}

}  // namespace rr::render
