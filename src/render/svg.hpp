// SVG rendering of placements — publication-style counterparts of the
// ASCII pictures, one <rect> per tile with per-module colors and
// per-resource background shades.
#pragma once

#include <span>
#include <string>

#include "fpga/region.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"

namespace rr::render {

struct SvgOptions {
  int tile_pixels = 10;
  bool draw_grid = true;
};

[[nodiscard]] std::string placement_svg(
    const fpga::PartialRegion& region,
    std::span<const model::Module> modules,
    const placer::PlacementSolution& solution, const SvgOptions& options = {});

/// Write placement_svg output to `path`.
void save_placement_svg(const std::string& path,
                        const fpga::PartialRegion& region,
                        std::span<const model::Module> modules,
                        const placer::PlacementSolution& solution,
                        const SvgOptions& options = {});

}  // namespace rr::render
