// Ablation A1 — utilization and solve time versus the number of design
// alternatives per module (1, 2, 4, 8).
//
// Expected shape: utilization rises monotonically with the alternative
// count with diminishing returns; solver effort (and the paper's execution
// time) grows with the number of shapes (30 modules -> 120 shapes at 4
// alternatives, §V.B).
#include "bench_common.hpp"

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  config.print(std::cout);

  TextTable table({"Alternatives", "Total shapes", "Mean util.",
                   "Mean time", "Mean extent"});
  for (const int alternatives : {1, 2, 4, 8}) {
    RunningStats util, time, extent;
    long shape_total = 0;
    for (int run = 0; run < config.runs; ++run) {
      const std::uint64_t seed =
          config.seed + static_cast<std::uint64_t>(run);
      const auto region = bench::make_eval_region(seed, config.modules);
      model::GeneratorParams params = bench::paper_workload_params();
      params.alternatives = alternatives;
      model::ModuleGenerator generator(params, seed);
      const auto modules = generator.generate_many(config.modules);
      for (const auto& m : modules) shape_total += m.shape_count();

      placer::PlacerOptions options;
      options.time_limit_seconds = config.time_limit;
      options.seed = seed;
      const auto outcome = placer::Placer(*region, modules, options).place();
      if (!outcome.solution.feasible) continue;
      const auto report =
          placer::validate(*region, modules, outcome.solution);
      if (!report.ok()) {
        std::cerr << "VALIDATION FAILED: " << report.errors.front() << '\n';
        return 1;
      }
      util.add(placer::spanned_utilization(*region, modules,
                                           outcome.solution));
      time.add(outcome.seconds);
      extent.add(outcome.solution.extent);
    }
    table.add_row({std::to_string(alternatives),
                   std::to_string(shape_total / std::max(1, config.runs)),
                   TextTable::pct(util.mean()),
                   TextTable::num(time.mean(), 3) + "s",
                   TextTable::num(extent.mean(), 1)});
  }
  table.print(std::cout,
              "Ablation A1: utilization vs number of design alternatives");
  std::cout << "expected: monotone utilization gain with diminishing "
               "returns as alternatives increase\n";
  return 0;
}
