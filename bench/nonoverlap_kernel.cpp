// Geost kernel microbench — incremental vs from-scratch propagation.
//
// Runs the same seeded branch-and-bound placements twice, once per
// non-overlap engine, under a fixed fail budget and no deadline so both
// searches are deterministic and explore the identical tree. The engines
// must agree exactly (extent, placements, node and fail counts); the
// point of the bench is the per-kind kGeost propagation-time column,
// where the incremental engine should come out ahead.
#include "bench_common.hpp"

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  config.print(std::cout);
  bench::StatsJsonWriter record("nonoverlap_kernel", config);
  // The geost timer is the measurement here, not an optional extra.
  metrics::set_enabled(true);

  const auto geost_ns = [](const placer::PlacementOutcome& outcome) {
    return outcome.space_stats
        .by_kind[static_cast<std::size_t>(cp::PropKind::kGeost)]
        .time_ns;
  };

  RunningStats incr_ms, scratch_ms, speedup;
  int mismatches = 0;
  int infeasible = 0;
  TextTable table({"Run", "Extent", "Geost incr", "Geost scratch", "Speedup",
                   "Identical"});
  for (int run = 0; run < config.runs; ++run) {
    const std::uint64_t seed = config.seed + static_cast<std::uint64_t>(run);
    const auto region = bench::make_eval_region(seed, config.modules);
    model::ModuleGenerator generator(bench::paper_workload_params(), seed);
    const auto modules = generator.generate_many(config.modules);

    placer::PlacementOutcome outcomes[2];
    for (const bool incremental : {false, true}) {
      placer::PlacerOptions options;
      options.mode = placer::PlacerMode::kBranchAndBound;
      options.time_limit_seconds = 0;  // deterministic: fail budget only
      options.max_fails = 5000;
      options.seed = seed;
      options.nonoverlap.incremental = incremental;
      outcomes[incremental] =
          placer::Placer(*region, modules, options).place();
    }
    const auto& incr = outcomes[1];
    const auto& scratch = outcomes[0];
    if (!incr.solution.feasible && !scratch.solution.feasible) {
      ++infeasible;
      continue;
    }
    // Identical trees or bust: same extent, same placements, same node and
    // fail counts. Any divergence is an engine bug, not noise.
    bool identical = incr.solution.feasible == scratch.solution.feasible &&
                     incr.solution.extent == scratch.solution.extent &&
                     incr.stats.nodes == scratch.stats.nodes &&
                     incr.stats.fails == scratch.stats.fails &&
                     incr.solution.placements.size() ==
                         scratch.solution.placements.size();
    for (std::size_t i = 0;
         identical && i < incr.solution.placements.size(); ++i) {
      const auto& a = incr.solution.placements[i];
      const auto& b = scratch.solution.placements[i];
      identical = a.module == b.module && a.shape == b.shape && a.x == b.x &&
                  a.y == b.y;
    }
    if (!identical) ++mismatches;
    const auto report = placer::validate(*region, modules, incr.solution);
    if (!report.ok()) {
      std::cerr << "VALIDATION FAILED: " << report.errors.front() << '\n';
      return 1;
    }
    const double incr_time = static_cast<double>(geost_ns(incr)) / 1e6;
    const double scratch_time = static_cast<double>(geost_ns(scratch)) / 1e6;
    incr_ms.add(incr_time);
    scratch_ms.add(scratch_time);
    if (incr_time > 0) speedup.add(scratch_time / incr_time);
    table.add_row({std::to_string(run),
                   std::to_string(incr.solution.extent),
                   TextTable::num(incr_time, 2) + "ms",
                   TextTable::num(scratch_time, 2) + "ms",
                   incr_time > 0
                       ? TextTable::num(scratch_time / incr_time, 2) + "x"
                       : "-",
                   identical ? "yes" : "NO"});
  }
  table.add_row({"mean", "-", TextTable::num(incr_ms.mean(), 2) + "ms",
                 TextTable::num(scratch_ms.mean(), 2) + "ms",
                 TextTable::num(speedup.mean(), 2) + "x",
                 mismatches == 0 ? "yes" : "NO"});
  table.print(std::cout,
              "Geost non-overlap kernel: incremental vs from-scratch "
              "propagation time (identical B&B trees)");
  if (infeasible > 0)
    std::cout << "# " << infeasible << " infeasible run(s) skipped\n";

  record.add_result("geost_ms_incremental", incr_ms);
  record.add_result("geost_ms_scratch", scratch_ms);
  record.add_result("speedup", speedup);
  record.add_result("mismatches", json::Value(mismatches));
  record.add_result("infeasible_runs", json::Value(infeasible));
  if (mismatches > 0) {
    std::cerr << "ENGINE MISMATCH: incremental and from-scratch kernels "
                 "disagreed on "
              << mismatches << " run(s)\n";
    return 1;
  }
  return 0;
}
