// Figures 3 and 5 — optimal placement with and without design
// alternatives, rendered side by side on a heterogeneous region.
//
// Expected shape: the with-alternatives placement spans fewer columns
// (lower extent, higher utilization) on the same module set. SVG versions
// are written next to the binary for the paper-style figures.
#include "bench_common.hpp"

int main() {
  using namespace rr;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(env_int("RRPLACE_SEED", 2011));
  const int module_count = env_int("RRPLACE_MODULES", 8);
  const double time_limit = env_double("RRPLACE_TIME_LIMIT", 2.0);

  const auto region = bench::make_eval_region(seed, module_count);
  model::GeneratorParams params = bench::paper_workload_params();
  params.clb_min = 20;
  params.clb_max = 60;  // smaller modules render more readably
  model::ModuleGenerator generator(params, seed);
  const auto modules = generator.generate_many(module_count);

  TextTable table({"Configuration", "Extent", "Spanned util.",
                   "Fragmentation", "Time"});
  for (const bool alternatives : {false, true}) {
    placer::PlacerOptions options;
    options.use_alternatives = alternatives;
    options.time_limit_seconds = time_limit;
    options.seed = seed;
    const auto outcome =
        placer::Placer(*region, modules, options).place();
    const char* label =
        alternatives ? "with design alternatives" : "without alternatives";
    std::cout << "== Figure 3/5 (" << label << ") ==\n";
    if (!outcome.solution.feasible) {
      std::cout << "infeasible\n\n";
      continue;
    }
    const auto report = placer::validate(*region, modules, outcome.solution);
    if (!report.ok()) {
      std::cerr << "VALIDATION FAILED: " << report.errors.front() << '\n';
      return 1;
    }
    std::cout << render::placement_ascii(*region, modules, outcome.solution)
              << render::legend() << '\n';
    table.add_row(
        {label, std::to_string(outcome.solution.extent),
         TextTable::pct(
             placer::spanned_utilization(*region, modules, outcome.solution)),
         TextTable::num(
             placer::fragmentation(*region, modules, outcome.solution), 3),
         TextTable::num(outcome.seconds, 3) + "s"});
    const std::string path = std::string("fig3_fig5_") +
                             (alternatives ? "with" : "without") +
                             "_alternatives.svg";
    render::save_placement_svg(path, *region, modules, outcome.solution);
    std::cout << "(SVG written to " << path << ")\n\n";
  }
  table.print(std::cout, "Figure 3/5 summary");
  return 0;
}
