// Table/element kernel microbench — compact-table vs scanning propagation.
//
// Two experiments, both run twice on identical search trees (same seeds,
// fail budgets, no deadline) so the engines must agree exactly and the
// per-kind propagation-time columns are directly comparable:
//
//   1. element: the real placer model under seeded branch-and-bound, with
//      the placement->extent element constraint switched between the
//      compact and scanning engines (kElement time).
//   2. table: a synthetic CSP of overlapping random ternary positive table
//      constraints, enumerated by DFS under a fail budget, switched between
//      CompactTable and ScanningTable (kTable time).
//
// The combined speedup (scanning / compact, summed over both kinds) is the
// headline number; CI pins it via tools/bench_diff against the committed
// baseline. Any tree divergence exits nonzero — it is an engine bug, not
// noise.
#include "bench_common.hpp"

namespace {

using namespace rr;

std::uint64_t kind_ns(const cp::SpaceStats& stats, cp::PropKind kind) {
  return stats.by_kind[static_cast<std::size_t>(kind)].time_ns;
}

struct TableRun {
  std::uint64_t table_ns = 0;
  std::uint64_t nodes = 0;
  std::uint64_t fails = 0;
  std::uint64_t solutions = 0;
};

/// Enumerate one random overlapping-scope table CSP under fail/node
/// budgets. 12 variables over [0,30), sliding arity-3 scopes (10 chained
/// constraints) with 900 random tuples each — dense enough that GAC
/// propagation, not branching, is where the time goes.
TableRun run_table_csp(std::uint64_t seed, bool compact) {
  constexpr int kVars = 12;
  constexpr int kDomainSize = 30;
  constexpr int kArity = 3;
  constexpr int kTuplesPerConstraint = 900;

  cp::Space space;
  std::vector<cp::VarId> vars;
  for (int i = 0; i < kVars; ++i)
    vars.push_back(space.new_var(0, kDomainSize - 1));
  Rng rng(seed);
  for (int first = 0; first + kArity <= kVars; ++first) {
    std::vector<cp::VarId> scope(vars.begin() + first,
                                 vars.begin() + first + kArity);
    std::vector<std::vector<int>> tuples;
    for (int t = 0; t < kTuplesPerConstraint; ++t) {
      std::vector<int> tuple(kArity);
      for (int i = 0; i < kArity; ++i)
        tuple[i] = rng.uniform_int(0, kDomainSize - 1);
      tuples.push_back(std::move(tuple));
    }
    cp::post_table(space, scope, std::move(tuples),
                   cp::TableOptions{compact});
  }

  cp::BasicBrancher brancher(vars, cp::VarSelect::kFirstFail,
                             cp::ValSelect::kMin, seed);
  cp::Search::Options options;
  options.limits.max_fails = 10000;
  options.limits.max_nodes = 200000;  // bounds full enumeration
  cp::Search search(space, brancher, options);
  TableRun result;
  while (search.next()) ++result.solutions;
  result.nodes = search.stats().nodes;
  result.fails = search.stats().fails;
  result.table_ns = kind_ns(space.stats(), cp::PropKind::kTable);
  return result;
}

}  // namespace

int main() {
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  config.print(std::cout);
  bench::StatsJsonWriter record("table_kernel", config);
  // The per-kind timers are the measurement here, not an optional extra.
  metrics::set_enabled(true);

  int mismatches = 0;

  // --- Experiment 1: placer element kernel under B&B ------------------------
  RunningStats element_compact_ms, element_scan_ms, element_speedup;
  int infeasible = 0;
  TextTable element_table({"Run", "Extent", "Element compact",
                           "Element scan", "Speedup", "Identical"});
  for (int run = 0; run < config.runs; ++run) {
    const std::uint64_t seed = config.seed + static_cast<std::uint64_t>(run);
    const auto region = bench::make_eval_region(seed, config.modules);
    model::ModuleGenerator generator(bench::paper_workload_params(), seed);
    const auto modules = generator.generate_many(config.modules);

    placer::PlacementOutcome outcomes[2];
    for (const bool compact : {false, true}) {
      placer::PlacerOptions options;
      options.mode = placer::PlacerMode::kBranchAndBound;
      options.time_limit_seconds = 0;  // deterministic: fail budget only
      options.max_fails = 5000;
      options.seed = seed;
      options.element.compact = compact;
      outcomes[compact] = placer::Placer(*region, modules, options).place();
    }
    const auto& comp = outcomes[1];
    const auto& scan = outcomes[0];
    if (!comp.solution.feasible && !scan.solution.feasible) {
      ++infeasible;
      continue;
    }
    // Identical trees or bust: same extent, same placements, same node and
    // fail counts.
    bool identical = comp.solution.feasible == scan.solution.feasible &&
                     comp.solution.extent == scan.solution.extent &&
                     comp.stats.nodes == scan.stats.nodes &&
                     comp.stats.fails == scan.stats.fails &&
                     comp.solution.placements.size() ==
                         scan.solution.placements.size();
    for (std::size_t i = 0; identical && i < comp.solution.placements.size();
         ++i) {
      const auto& a = comp.solution.placements[i];
      const auto& b = scan.solution.placements[i];
      identical = a.module == b.module && a.shape == b.shape && a.x == b.x &&
                  a.y == b.y;
    }
    if (!identical) ++mismatches;
    const auto report = placer::validate(*region, modules, comp.solution);
    if (!report.ok()) {
      std::cerr << "VALIDATION FAILED: " << report.errors.front() << '\n';
      return 1;
    }
    const double compact_ms = static_cast<double>(kind_ns(
                                  comp.space_stats, cp::PropKind::kElement)) /
                              1e6;
    const double scan_ms = static_cast<double>(kind_ns(
                               scan.space_stats, cp::PropKind::kElement)) /
                           1e6;
    element_compact_ms.add(compact_ms);
    element_scan_ms.add(scan_ms);
    if (compact_ms > 0) element_speedup.add(scan_ms / compact_ms);
    element_table.add_row(
        {std::to_string(run), std::to_string(comp.solution.extent),
         TextTable::num(compact_ms, 2) + "ms",
         TextTable::num(scan_ms, 2) + "ms",
         compact_ms > 0 ? TextTable::num(scan_ms / compact_ms, 2) + "x" : "-",
         identical ? "yes" : "NO"});
  }
  element_table.add_row(
      {"mean", "-", TextTable::num(element_compact_ms.mean(), 2) + "ms",
       TextTable::num(element_scan_ms.mean(), 2) + "ms",
       TextTable::num(element_speedup.mean(), 2) + "x",
       mismatches == 0 ? "yes" : "NO"});
  element_table.print(std::cout,
                      "Element kernel: compact-table vs scanning propagation "
                      "time (identical B&B trees)");
  if (infeasible > 0)
    std::cout << "# " << infeasible << " infeasible run(s) skipped\n";

  // --- Experiment 2: synthetic positive-table CSP ---------------------------
  RunningStats table_compact_ms, table_scan_ms, table_speedup;
  TextTable table_table({"Run", "Solutions", "Table compact", "Table scan",
                         "Speedup", "Identical"});
  constexpr int kInstancesPerRun = 2;  // aggregated for stable timing
  for (int run = 0; run < config.runs; ++run) {
    TableRun comp, scan;
    bool identical = true;
    for (int inst = 0; inst < kInstancesPerRun; ++inst) {
      const std::uint64_t seed =
          config.seed + static_cast<std::uint64_t>(run * kInstancesPerRun +
                                                   inst);
      const TableRun c = run_table_csp(seed, /*compact=*/true);
      const TableRun s = run_table_csp(seed, /*compact=*/false);
      identical = identical && c.nodes == s.nodes && c.fails == s.fails &&
                  c.solutions == s.solutions;
      comp.table_ns += c.table_ns;
      comp.nodes += c.nodes;
      comp.fails += c.fails;
      comp.solutions += c.solutions;
      scan.table_ns += s.table_ns;
      scan.nodes += s.nodes;
      scan.fails += s.fails;
      scan.solutions += s.solutions;
    }
    if (!identical) ++mismatches;
    const double compact_ms = static_cast<double>(comp.table_ns) / 1e6;
    const double scan_ms = static_cast<double>(scan.table_ns) / 1e6;
    table_compact_ms.add(compact_ms);
    table_scan_ms.add(scan_ms);
    if (compact_ms > 0) table_speedup.add(scan_ms / compact_ms);
    table_table.add_row(
        {std::to_string(run), std::to_string(comp.solutions),
         TextTable::num(compact_ms, 2) + "ms",
         TextTable::num(scan_ms, 2) + "ms",
         compact_ms > 0 ? TextTable::num(scan_ms / compact_ms, 2) + "x" : "-",
         identical ? "yes" : "NO"});
  }
  table_table.add_row(
      {"mean", "-", TextTable::num(table_compact_ms.mean(), 2) + "ms",
       TextTable::num(table_scan_ms.mean(), 2) + "ms",
       TextTable::num(table_speedup.mean(), 2) + "x",
       mismatches == 0 ? "yes" : "NO"});
  table_table.print(std::cout,
                    "Positive-table kernel: compact-table vs scanning "
                    "propagation time (identical DFS trees)");

  // Combined headline: total scanning time over total compact time across
  // both kinds (the acceptance bar is >= 2x).
  const double combined_compact =
      element_compact_ms.mean() * element_compact_ms.count() +
      table_compact_ms.mean() * table_compact_ms.count();
  const double combined_scan =
      element_scan_ms.mean() * element_scan_ms.count() +
      table_scan_ms.mean() * table_scan_ms.count();
  const double combined_speedup =
      combined_compact > 0 ? combined_scan / combined_compact : 0.0;
  std::cout << "# combined kTable+kElement speedup: "
            << TextTable::num(combined_speedup, 2) << "x\n";

  record.add_result("element_ms_compact", element_compact_ms);
  record.add_result("element_ms_scanning", element_scan_ms);
  record.add_result("element_speedup", element_speedup);
  record.add_result("table_ms_compact", table_compact_ms);
  record.add_result("table_ms_scanning", table_scan_ms);
  record.add_result("table_speedup", table_speedup);
  record.add_result("combined_speedup", json::Value(combined_speedup));
  record.add_result("mismatches", json::Value(mismatches));
  record.add_result("infeasible_runs", json::Value(infeasible));
  if (mismatches > 0) {
    std::cerr << "ENGINE MISMATCH: compact and scanning propagators "
                 "disagreed on "
              << mismatches << " run(s)\n";
    return 1;
  }
  return 0;
}
