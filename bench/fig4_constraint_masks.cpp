// Figure 4 — how the placement constraints restrict where a module can go:
//   (a) the bounding box of the complete partial region,
//   (b) resource-feasible anchors of one module (gray areas in the paper),
//   (c) the reconfigurable region covering only part of the device
//       (static region blocked),
//   (d) the shadow of a placed module that others must avoid.
#include "bench_common.hpp"

int main() {
  using namespace rr;
  // A compact device so the pictures stay readable: BRAM columns every 6.
  fpga::ColumnarSpec spec;
  spec.bram_period = 6;
  spec.bram_offset = 3;
  spec.dsp_period = 0;
  spec.center_clock_column = false;
  spec.edge_io = false;
  auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_columnar(30, 10, spec));

  // The module: 8 CLBs + 1 memory block, two columns wide.
  const auto shape = model::ModuleGenerator::make_column_shape(
      8, 1, 2, 4, /*bram_column=*/0);

  std::cout << "module used throughout (B = memory, C = logic):\n"
            << model::shape_picture(shape) << '\n';

  {
    fpga::PartialRegion region(fabric);
    std::cout << "== Figure 4a: the complete partial region (bounding box "
              << region.width() << "x" << region.height() << ") ==\n"
              << render::region_ascii(region) << '\n';
    std::cout << "== Figure 4b: valid anchors of the module ('*'), "
                 "restricted by resource types ==\n"
              << render::anchor_mask_ascii(region, shape) << '\n';
  }
  {
    // (c) the reconfigurable region covers only part of the device: the
    // right half hosts the static design.
    fpga::PartialRegion region(fabric);
    region.block(Rect{15, 0, 15, 10});
    std::cout << "== Figure 4c: placement constrained to the reconfigurable "
                 "region (static part '#') ==\n"
              << render::anchor_mask_ascii(region, shape) << '\n';
  }
  {
    // (d) one placed module excludes its area for all others.
    fpga::PartialRegion region(fabric);
    const std::vector<model::Module> modules{
        model::Module("placed", {shape})};
    placer::PlacerOptions options;
    options.time_limit_seconds = 1.0;
    const auto outcome = placer::Placer(region, modules, options).place();
    if (outcome.solution.feasible) {
      std::cout << "== Figure 4d: a placed module ('A'); other modules "
                   "cannot overlap it ==\n"
                << render::placement_ascii(region, modules, outcome.solution)
                << '\n';
    }
  }
  std::cout << render::legend();
  return 0;
}
