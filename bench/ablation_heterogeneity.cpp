// Ablation A2 — the paper's motivating claim (§I): dedicated resources
// restrict placement, and the more irregular the device, the harder it is
// to use it densely. Places the same workloads on a homogeneous, a regular
// columnar and an irregular fabric of identical size.
//
// Expected shape: homogeneous >= columnar >= irregular in utilization;
// mean anchor count per shape shrinks with heterogeneity.
#include "bench_common.hpp"

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  config.print(std::cout);

  const int height = 28;
  const int width =
      std::max(24, config.modules * 64 * 2 / height);

  struct FabricCase {
    const char* label;
    fpga::Fabric fabric;
  };
  fpga::ColumnarSpec columnar;
  columnar.bram_period = 12;
  columnar.bram_offset = 5;
  columnar.dsp_period = 0;
  columnar.center_clock_column = true;
  columnar.edge_io = false;
  fpga::IrregularSpec irregular;
  irregular.base = columnar;
  irregular.jitter = 2;
  irregular.interruption_probability = 0.6;
  irregular.interruption_length = 3;

  std::vector<FabricCase> cases;
  cases.push_back({"homogeneous", fpga::make_homogeneous(width, height)});
  cases.push_back({"columnar", fpga::make_columnar(width, height, columnar)});
  cases.push_back(
      {"irregular", fpga::make_irregular(width, height, irregular, config.seed)});

  TextTable table({"Fabric", "Mean util.", "Mean extent", "Mean anchors/shape",
                   "Infeasible"});
  for (const FabricCase& fc : cases) {
    auto fabric = std::make_shared<const fpga::Fabric>(fc.fabric);
    const fpga::PartialRegion region(fabric);
    RunningStats util, extent, anchors;
    int infeasible = 0;
    for (int run = 0; run < config.runs; ++run) {
      const std::uint64_t seed =
          config.seed + static_cast<std::uint64_t>(run);
      // CLB-only workload: the same modules must be placeable on every
      // fabric (a homogeneous device has no BRAM tiles to offer), so the
      // comparison isolates how dedicated-resource columns *restrict*
      // placement of logic rather than raw placeability.
      model::GeneratorParams params = bench::paper_workload_params();
      params.bram_blocks_min = 0;
      params.bram_blocks_max = 0;
      // Narrow enough to fit the worst-case jittered column gap of the
      // irregular fabric (period 12, jitter 2 -> gaps down to 7).
      params.max_width = 7;
      params.max_height = 16;
      model::ModuleGenerator generator(params, seed);
      const auto modules = generator.generate_many(config.modules);

      const auto tables = placer::prepare_tables(region, modules, true);
      long shapes = 0, placements = 0;
      for (const auto& t : tables) {
        shapes += static_cast<long>(t.shapes->size());
        placements += static_cast<long>(t.table.size());
      }
      anchors.add(static_cast<double>(placements) /
                  static_cast<double>(std::max(1L, shapes)));

      placer::PlacerOptions options;
      options.time_limit_seconds = config.time_limit;
      options.seed = seed;
      const auto outcome = placer::Placer(region, modules, options).place();
      if (!outcome.solution.feasible) {
        ++infeasible;
        continue;
      }
      util.add(
          placer::spanned_utilization(region, modules, outcome.solution));
      extent.add(outcome.solution.extent);
    }
    table.add_row({fc.label, TextTable::pct(util.mean()),
                   TextTable::num(extent.mean(), 1),
                   TextTable::num(anchors.mean(), 0),
                   std::to_string(infeasible)});
  }
  table.print(std::cout,
              "Ablation A2: heterogeneity restricts placement (paper SI)");
  std::cout << "expected: homogeneous packs densest; heterogeneity cuts the "
               "anchor count and utilization\n";
  return 0;
}
