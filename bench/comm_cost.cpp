// Communication-aware placement: wirelength and acceptance under churn.
//
// The inter-module communication model (src/comm/net) prices a placement by
// the weighted half-perimeter wirelength of its nets. This bench replays
// identical arrival/departure traces through the online placer under the
// area-only first-fit policy and under the commcost anchor policy, and
// reports the live-wirelength reduction the communication term buys and
// what it costs in acceptance.
//
// Two differential pins ride along (CI holds both at zero via bench_diff):
//   - zero_weight_mismatches: the commcost policy with comm_weight = 0 must
//     take byte-identical decisions to first fit (the zero-weight oracle);
//   - index_sweep_mismatches: the free-space-index arm and the bitmap-sweep
//     arm of the commcost policy must pick identical anchors (the pinned
//     tie-breaking contract).
#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "util/rng.hpp"

namespace {

/// One request's observable outcome; (shape, x, y) only valid if accepted.
struct StepOutcome {
  bool accepted = false;
  int shape = 0;
  int x = 0;
  int y = 0;

  bool operator==(const StepOutcome&) const = default;
};

struct TraceResult {
  std::vector<StepOutcome> steps;
  double acceptance = 0.0;
  double mean_wirelength2 = 0.0;
};

/// Chain nets over the generated pool (m00 -> m01 -> ...), plus every
/// fourth module streaming to a fixed left-edge terminal (an IO pad).
rr::comm::NetList make_nets(const std::vector<rr::model::Module>& pool,
                            int height) {
  rr::comm::NetList nets;
  for (std::size_t i = 0; i + 1 < pool.size(); ++i) {
    rr::comm::Net net;
    net.weight = static_cast<long>(i % 3 + 1);
    net.modules = {pool[i].name(), pool[i + 1].name()};
    nets.nets.push_back(std::move(net));
  }
  for (std::size_t i = 0; i < pool.size(); i += 4) {
    rr::comm::Net net;
    net.weight = 2;
    net.modules = {pool[i].name()};
    net.terminals.push_back(rr::Point{0, height / 2});
    nets.nets.push_back(std::move(net));
  }
  return nets;
}

/// Replay the churn trace derived from `seed` (identical across
/// configurations); wirelength is sampled over the live set after every
/// step.
TraceResult replay_trace(rr::baseline::OnlinePlacer& placer,
                         const std::vector<rr::model::Module>& pool,
                         const rr::comm::NetList& nets, std::uint64_t seed,
                         int steps) {
  rr::Rng rng(seed ^ 0xC0117);
  std::vector<int> live;
  std::unordered_map<int, const rr::model::Module*> live_modules;
  int requests = 0, accepted = 0, next_id = 0;
  rr::RunningStats wirelength;
  TraceResult result;
  for (int step = 0; step < steps; ++step) {
    if (live.empty() || rng.chance(0.55)) {
      ++requests;
      const auto& module = pool[rng.pick_index(pool)];
      const auto placement = placer.place(next_id, module);
      StepOutcome outcome;
      outcome.accepted = placement.has_value();
      if (placement) {
        outcome.shape = placement->shape;
        outcome.x = placement->x;
        outcome.y = placement->y;
        live.push_back(next_id);
        live_modules[next_id] = &module;
        ++accepted;
      }
      result.steps.push_back(outcome);
      ++next_id;
    } else {
      const std::size_t pick = rng.pick_index(live);
      placer.remove(live[pick]);
      live_modules.erase(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    // Positions from the placer (not the admission answer): a defrag pass,
    // when enabled, may have relocated live instances.
    std::vector<rr::comm::NamedPin> pins;
    pins.reserve(live_modules.size());
    for (const auto& p : placer.live_placements()) {
      const rr::model::Module* module = live_modules.at(p.module);
      const rr::Rect box =
          module->shapes()[static_cast<std::size_t>(p.shape)].bounding_box();
      pins.push_back(rr::comm::NamedPin{module->name(),
                                        rr::comm::center2(box, p.x, p.y)});
    }
    wirelength.add(
        static_cast<double>(rr::comm::pins_wirelength2(nets, pins)));
  }
  result.acceptance =
      requests > 0 ? static_cast<double>(accepted) / requests : 0.0;
  result.mean_wirelength2 = wirelength.mean();
  return result;
}

long count_mismatches(const TraceResult& a, const TraceResult& b) {
  if (a.steps.size() != b.steps.size())
    return static_cast<long>(std::max(a.steps.size(), b.steps.size()));
  long mismatches = 0;
  for (std::size_t i = 0; i < a.steps.size(); ++i)
    if (!(a.steps[i] == b.steps[i])) ++mismatches;
  return mismatches;
}

}  // namespace

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  bench::StatsJsonWriter record("comm_cost", config);
  config.print(std::cout);
  const int steps = env_int("RRPLACE_STEPS", 400);
  const long comm_weight = env_int("RRPLACE_COMM_WEIGHT", 8);

  RunningStats accept_ff, accept_comm, wl_ff, wl_comm, reduction;
  long requests = 0, zero_weight_mismatches = 0, index_sweep_mismatches = 0;
  for (int run = 0; run < config.runs; ++run) {
    const std::uint64_t seed = config.seed + static_cast<std::uint64_t>(run);
    const auto region = bench::make_eval_region(seed, config.modules);
    model::ModuleGenerator generator(bench::paper_workload_params(), seed);
    const auto pool = generator.generate_many(config.modules);
    const auto nets = std::make_shared<const comm::NetList>(
        make_nets(pool, region->height()));

    // Four configurations over the identical trace: area-only first fit,
    // commcost on both admission arms, and commcost at weight zero.
    TraceResult first_fit, comm_index, comm_sweep, zero_weight;
    for (const int variant : {0, 1, 2, 3}) {
      baseline::OnlineOptions options;
      if (variant >= 1) {
        options.policy = AnchorPolicy::kCommCost;
        options.nets = nets;
        options.comm_weight = variant == 3 ? 0 : comm_weight;
      }
      options.free_space_index = variant != 2;
      baseline::OnlinePlacer placer(*region, options);
      TraceResult result = replay_trace(placer, pool, *nets, seed, steps);
      switch (variant) {
        case 0: first_fit = std::move(result); break;
        case 1: comm_index = std::move(result); break;
        case 2: comm_sweep = std::move(result); break;
        case 3: zero_weight = std::move(result); break;
      }
    }
    requests += static_cast<long>(first_fit.steps.size());
    accept_ff.add(first_fit.acceptance);
    accept_comm.add(comm_index.acceptance);
    wl_ff.add(first_fit.mean_wirelength2);
    wl_comm.add(comm_index.mean_wirelength2);
    if (first_fit.mean_wirelength2 > 0.0)
      reduction.add(1.0 -
                    comm_index.mean_wirelength2 / first_fit.mean_wirelength2);
    index_sweep_mismatches += count_mismatches(comm_index, comm_sweep);
    zero_weight_mismatches += count_mismatches(first_fit, zero_weight);
  }

  TextTable table({"Policy", "Acceptance", "Mean live wirelength2"});
  table.add_row({"first fit (area only)", TextTable::pct(accept_ff.mean()),
                 TextTable::num(wl_ff.mean(), 1)});
  table.add_row({"commcost (w=" + std::to_string(comm_weight) + ")",
                 TextTable::pct(accept_comm.mean()),
                 TextTable::num(wl_comm.mean(), 1)});
  table.print(std::cout, "Communication-aware online placement (" +
                             std::to_string(steps) + " steps)");
  std::cout << "wirelength reduction: " << TextTable::pct(reduction.mean())
            << "  zero-weight mismatches: " << zero_weight_mismatches
            << "  index-vs-sweep mismatches: " << index_sweep_mismatches
            << '\n';

  record.add_result("requests", json::Value(requests));
  record.add_result("acceptance_first_fit", accept_ff);
  record.add_result("acceptance_comm", accept_comm);
  record.add_result("wirelength2_first_fit", wl_ff);
  record.add_result("wirelength2_comm", wl_comm);
  record.add_result("wirelength_reduction", reduction);
  record.add_result("zero_weight_mismatches",
                    json::Value(zero_weight_mismatches));
  record.add_result("index_sweep_mismatches",
                    json::Value(index_sweep_mismatches));
  return 0;
}
