// Ablation A3 — solver engineering choices:
//   - geost compulsory-part sweep vs plain forward checking (§IV: the
//     extended geost kernel vs a naive non-overlap),
//   - pure branch-and-bound vs LNS vs the auto mode,
//   - portfolio width.
//
// Expected shape: compulsory parts prune more (fewer fails for the same
// result); LNS/auto dominate pure B&B under a time limit; the portfolio
// never hurts solution quality.
#include "bench_common.hpp"

int main() {
  using namespace rr;
  bench::EvalConfig config = bench::EvalConfig::from_env();
  config.print(std::cout);

  struct Case {
    const char* label;
    placer::PlacerMode mode;
    bool compulsory;
    int workers;
  };
  const Case cases[] = {
      {"B&B + geost sweep", placer::PlacerMode::kBranchAndBound, true, 1},
      {"B&B + forward checking", placer::PlacerMode::kBranchAndBound, false, 1},
      {"LNS", placer::PlacerMode::kLns, true, 1},
      {"auto (B&B then LNS)", placer::PlacerMode::kAuto, true, 1},
      {"restarting B&B", placer::PlacerMode::kRestarts, true, 1},
      {"B&B portfolio x2", placer::PlacerMode::kBranchAndBound, true, 2},
  };

  TextTable table({"Solver", "Mean util.", "Mean extent", "Mean fails",
                   "Optimal proofs", "Mean time"});
  for (const Case& c : cases) {
    RunningStats util, extent, fails, optimal, time;
    for (int run = 0; run < config.runs; ++run) {
      const std::uint64_t seed =
          config.seed + static_cast<std::uint64_t>(run);
      const auto region = bench::make_eval_region(seed, config.modules);
      model::ModuleGenerator generator(bench::paper_workload_params(), seed);
      const auto modules = generator.generate_many(config.modules);

      placer::PlacerOptions options;
      options.mode = c.mode;
      options.nonoverlap.use_compulsory_parts = c.compulsory;
      options.workers = c.workers;
      options.time_limit_seconds = config.time_limit;
      options.seed = seed;
      const auto outcome = placer::Placer(*region, modules, options).place();
      time.add(outcome.seconds);
      fails.add(static_cast<double>(outcome.stats.fails));
      optimal.add(outcome.optimal ? 1.0 : 0.0);
      if (!outcome.solution.feasible) continue;
      const auto report =
          placer::validate(*region, modules, outcome.solution);
      if (!report.ok()) {
        std::cerr << "VALIDATION FAILED (" << c.label
                  << "): " << report.errors.front() << '\n';
        return 1;
      }
      util.add(
          placer::spanned_utilization(*region, modules, outcome.solution));
      extent.add(outcome.solution.extent);
    }
    table.add_row({c.label, TextTable::pct(util.mean()),
                   TextTable::num(extent.mean(), 1),
                   TextTable::num(fails.mean(), 0),
                   TextTable::pct(optimal.mean(), 0),
                   TextTable::num(time.mean(), 3) + "s"});
  }
  table.print(std::cout, "Ablation A3: solver strategy");
  std::cout << "expected: LNS/auto beat pure B&B under a time limit; the "
               "geost sweep never loses to forward checking\n";
  return 0;
}
