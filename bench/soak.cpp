// Overload soak: deadline-aware shedding under saturation bursts.
//
// One generated workload trace (sim::WorkloadGenerator, storms disabled so
// latency measures the request path, not fault recovery) replays through
// the PlacementService three times per run:
//   - unloaded   one closed-loop submitter (submit, wait, repeat): no queue
//                wait ever builds, so latency_p99 is the intrinsic service
//                p99 `u` — the yardstick the overloaded arms answer to.
//   - shed       the trace arrives in waves of W requests dumped at once
//                onto `workers` workers (instantaneous saturation factor
//                W/workers >> 2x), with default_deadline_ms = 0.4 * u.
//                Dequeue-time shedding drops requests whose queue wait
//                already spent the budget, so every executed request waited
//                < 0.4u and accepted p99 stays ~ 0.4u + service <= 1.5u.
//   - control    the same waves with no deadline: nothing is shed, every
//                request rides the full wave queue, and p99 grows with
//                W/workers — the unbounded degradation shedding prevents.
// All arms run max_batch = 1: batch drains would execute queued requests
// back-to-back and fold queue wait into whichever request drains last,
// muddying the per-request deadline bound the shed arm demonstrates.
//
// Pinned contract (bench_diff on BENCH_soak.json): shed_p99_within_bound
// stays 1 (mean accepted-p99 ratio <= 1.5, the ISSUE acceptance bound),
// invariant_violations stays 0 (submitted == completed + shed in every arm,
// and the future statuses clients observed match the service counters),
// shed_rate stays high, and control_p99_ratio stays well above the shed
// ratio — the control arm really does degrade.
#include <algorithm>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using rr::service::Request;
using rr::service::Response;
using rr::service::ShedCounters;

struct ArmResult {
  rr::service::ServiceStats stats;
  // Shed statuses observed on the futures, to audit against the counters.
  std::uint64_t seen_deadline = 0;
  std::uint64_t seen_quota = 0;
  std::uint64_t seen_queue = 0;
  std::uint64_t seen_stopped = 0;
  std::uint64_t seen_completed = 0;
};

void observe(ArmResult& result, const Response& response) {
  switch (response.status) {
    case Response::Status::kShedDeadline: ++result.seen_deadline; break;
    case Response::Status::kShedQuota: ++result.seen_quota; break;
    case Response::Status::kShedQueue: ++result.seen_queue; break;
    case Response::Status::kRejectedStopped: ++result.seen_stopped; break;
    default: ++result.seen_completed; break;
  }
}

rr::service::PlacementService make_service(
    const std::shared_ptr<const rr::fpga::Fabric>& fabric,
    const std::vector<rr::model::Module>& library, int tenants, int workers,
    std::size_t queue_capacity, double deadline_ms) {
  std::vector<rr::service::Tenant::Config> configs;
  configs.reserve(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    rr::service::Tenant::Config config;
    config.fabric = fabric;
    config.library = library;
    // All arms run the uncached anchor-scan path: with the solve-context
    // cache and MER index on, a request costs tens of microseconds and the
    // 1.5x acceptance bound drowns in scheduler wake-up noise. The slow
    // path puts the unit of work at ~1ms, where queue wait vs deadline is
    // the only thing separating the arms.
    config.online.free_space_index = false;
    configs.push_back(std::move(config));
  }
  rr::service::ServiceOptions options;
  options.workers = workers;
  options.max_batch = 1;
  options.queue_capacity = queue_capacity;
  options.default_deadline_ms = deadline_ms;
  return rr::service::PlacementService(std::move(configs), options,
                                       /*cache_enabled=*/false);
}

/// Closed loop at capacity: one submitter per worker, each waiting for its
/// request before sending the next, so at most `workers` requests are in
/// flight and no queue builds — but the workers contend for memory and
/// cores exactly as they do under overload. That makes the unloaded p99
/// the fair yardstick: the overloaded arms differ from it only by queue
/// wait, not by a contention factor the closed loop never paid. Tenants
/// are partitioned across submitters, preserving per-tenant order.
ArmResult run_unloaded(const std::shared_ptr<const rr::fpga::Fabric>& fabric,
                       const std::vector<rr::model::Module>& library,
                       const rr::service::ServeTrace& trace, int workers) {
  auto service = make_service(fabric, library, trace.tenants, workers,
                              /*queue_capacity=*/256, /*deadline_ms=*/0.0);
  ArmResult result;
  std::vector<ArmResult> partial(static_cast<std::size_t>(workers));
  {
    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      submitters.emplace_back([&, w] {
        for (const Request& request : trace.requests)
          if (request.tenant % workers == w)
            observe(partial[static_cast<std::size_t>(w)],
                    service.submit(request).get());
      });
    }
    for (std::thread& thread : submitters) thread.join();
  }
  for (const ArmResult& part : partial) {
    result.seen_deadline += part.seen_deadline;
    result.seen_quota += part.seen_quota;
    result.seen_queue += part.seen_queue;
    result.seen_stopped += part.seen_stopped;
    result.seen_completed += part.seen_completed;
  }
  service.stop();
  result.stats = service.stats();
  return result;
}

/// Wave bursts: dump `wave` requests at once, drain them all, repeat. Each
/// wave is an instantaneous overload of wave/workers x.
ArmResult run_waves(const std::shared_ptr<const rr::fpga::Fabric>& fabric,
                    const std::vector<rr::model::Module>& library,
                    const rr::service::ServeTrace& trace, int workers,
                    std::size_t wave, double deadline_ms) {
  auto service = make_service(fabric, library, trace.tenants, workers,
                              std::max<std::size_t>(256, 2 * wave),
                              deadline_ms);
  ArmResult result;
  std::vector<std::future<Response>> futures;
  futures.reserve(wave);
  std::size_t next = 0;
  while (next < trace.requests.size()) {
    futures.clear();
    const std::size_t end = std::min(next + wave, trace.requests.size());
    for (; next < end; ++next)
      futures.push_back(service.submit(trace.requests[next]));
    for (auto& future : futures) observe(result, future.get());
  }
  service.stop();
  result.stats = service.stats();
  return result;
}

/// The accounting identity plus observed-status agreement; exact because
/// every future has resolved and the service is stopped.
long audit(const ArmResult& result, std::uint64_t expected_submitted) {
  long violations = 0;
  const ShedCounters& shed = result.stats.shed;
  if (shed.submitted != expected_submitted) ++violations;
  if (shed.submitted != shed.completed + shed.total_shed()) ++violations;
  if (shed.shed_deadline != result.seen_deadline) ++violations;
  if (shed.shed_quota != result.seen_quota) ++violations;
  if (shed.shed_queue != result.seen_queue) ++violations;
  if (shed.rejected_stopped != result.seen_stopped) ++violations;
  if (shed.completed != result.seen_completed) ++violations;
  return violations;
}

}  // namespace

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  bench::StatsJsonWriter record("soak", config);
  config.print(std::cout);
  const int tenants = env_int("RRPLACE_TENANTS", 4);
  const int workers = env_int("RRPLACE_SERVE_WORKERS", 2);
  const int requests = env_int("RRPLACE_STEPS", 600);
  const std::size_t wave =
      static_cast<std::size_t>(env_int("RRPLACE_SOAK_WAVE", 32));

  const auto region = bench::make_eval_region(config.seed, config.modules);
  const auto fabric = region->fabric_ptr();
  model::ModuleGenerator generator(bench::paper_workload_params(),
                                   config.seed);
  const auto library = generator.generate_many(config.modules);

  sim::WorkloadParams params;
  params.tenants = tenants;
  params.requests = static_cast<long>(requests);
  params.seed = config.seed;
  // No fault storms: a fault event re-keys the solve context and runs
  // displacement recovery, a legitimate cost but one that would own the
  // p99 of every arm equally and wash out the queueing signal.
  params.p_storm_start = 0.0;
  // Deadlines come from ServiceOptions::default_deadline_ms in the shed
  // arm so the identical trace replays deadline-free in the other two.
  params.deadline_base_ms = 0.0;
  sim::WorkloadGenerator workload(params, library, fabric->width(),
                                  fabric->height());
  const service::ServeTrace trace = workload.generate();
  const auto total = static_cast<std::uint64_t>(trace.requests.size());

  RunningStats unloaded_p99, shed_p99, control_p99;
  RunningStats shed_ratio, control_ratio, shed_rate, deadline_used;
  long violations = 0;
  for (int run = 0; run < config.runs; ++run) {
    const ArmResult unloaded = run_unloaded(fabric, library, trace, workers);
    const double u = unloaded.stats.latency_p99_ms;
    // 0.4u of queue-wait budget keeps accepted latency (< budget + service)
    // under the 1.5u acceptance bound; the floor guards tiny-u configs
    // where scheduler wakeup noise alone would shed everything.
    const double deadline_ms = std::max(0.4 * u, 0.05);
    const ArmResult shed =
        run_waves(fabric, library, trace, workers, wave, deadline_ms);
    const ArmResult control =
        run_waves(fabric, library, trace, workers, wave, /*deadline_ms=*/0.0);

    violations += audit(unloaded, total);
    violations += audit(shed, total);
    violations += audit(control, total);

    unloaded_p99.add(u);
    shed_p99.add(shed.stats.latency_p99_ms);
    control_p99.add(control.stats.latency_p99_ms);
    deadline_used.add(deadline_ms);
    if (u > 0.0) {
      shed_ratio.add(shed.stats.latency_p99_ms / u);
      control_ratio.add(control.stats.latency_p99_ms / u);
    }
    if (shed.stats.shed.submitted > 0)
      shed_rate.add(static_cast<double>(shed.stats.shed.total_shed()) /
                    static_cast<double>(shed.stats.shed.submitted));
  }
  // The acceptance bound as a hard 0/1 gate: bench_diff treats a baseline
  // of 1 with pin :higher as "must not drop", so a run whose mean accepted
  // p99 exceeds 1.5x unloaded fails CI outright instead of by percentage.
  const long within_bound =
      shed_ratio.count() > 0 && shed_ratio.mean() <= 1.5 ? 1 : 0;

  TextTable table({"Arm", "p99 (ms)", "p99 / unloaded"});
  table.add_row({"unloaded closed loop",
                 TextTable::num(unloaded_p99.mean(), 3), "1.00"});
  table.add_row({"shed (deadline = 0.4 x unloaded p99)",
                 TextTable::num(shed_p99.mean(), 3),
                 TextTable::num(shed_ratio.mean(), 2)});
  table.add_row({"control (no deadline)",
                 TextTable::num(control_p99.mean(), 3),
                 TextTable::num(control_ratio.mean(), 2)});
  table.print(std::cout,
              "Overload soak: " + std::to_string(total) + " requests, " +
                  std::to_string(tenants) + " tenants, waves of " +
                  std::to_string(wave) + " on " + std::to_string(workers) +
                  " workers");
  std::cout << "shed rate: " << TextTable::pct(shed_rate.mean())
            << "  deadline: " << TextTable::num(deadline_used.mean(), 3)
            << "ms  within 1.5x bound: " << (within_bound ? "yes" : "NO")
            << "  invariant violations: " << violations << '\n';

  record.add_result("requests", json::Value(total));
  record.add_result("tenants", json::Value(tenants));
  record.add_result("workers", json::Value(workers));
  record.add_result("wave", json::Value(static_cast<long>(wave)));
  record.add_result("deadline_ms", deadline_used);
  record.add_result("unloaded_p99_ms", unloaded_p99);
  record.add_result("shed_p99_ms", shed_p99);
  record.add_result("control_p99_ms", control_p99);
  record.add_result("shed_p99_ratio", shed_ratio);
  record.add_result("control_p99_ratio", control_ratio);
  record.add_result("shed_rate", shed_rate);
  record.add_result("shed_p99_within_bound", json::Value(within_bound));
  record.add_result("invariant_violations", json::Value(violations));
  return violations == 0 ? 0 : 1;
}
