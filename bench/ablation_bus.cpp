// Ablation A5 — the ReCoBus-style communication constraint: modules must
// anchor their connection row on a bus lane (§III.A: resource types
// representing "communication macros for bus attachment").
//
// Expected shape: bus alignment restricts anchors (slot-style placement,
// §II classification) and costs utilization; design alternatives recover
// part of the loss because rotated/reshaped layouts offer more lane-
// compatible anchors.
#include "bench_common.hpp"

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  config.print(std::cout);

  struct Case {
    const char* label;
    bool bus;
    bool alternatives;
  };
  const Case cases[] = {
      {"free placement, alternatives", false, true},
      {"bus-aligned, alternatives", true, true},
      {"bus-aligned, no alternatives", true, false},
  };

  TextTable table({"Configuration", "Mean util.", "Mean extent",
                   "Mean anchors/shape", "Infeasible"});
  for (const Case& c : cases) {
    RunningStats util, extent, anchors;
    int infeasible = 0;
    for (int run = 0; run < config.runs; ++run) {
      const std::uint64_t seed =
          config.seed + static_cast<std::uint64_t>(run);
      // CLB-only workload; lane period above the max module height so a
      // module never straddles two lanes.
      model::GeneratorParams params = bench::paper_workload_params();
      params.bram_blocks_min = 0;
      params.bram_blocks_max = 0;
      params.max_height = 12;
      model::ModuleGenerator generator(params, seed);
      auto modules = generator.generate_many(config.modules);

      const int height = 28;
      const int width = std::max(48, config.modules * 64 * 2 / height);
      fpga::Fabric fabric = fpga::make_homogeneous(width, height);
      if (c.bus) {
        comm::BusSpec spec;
        spec.lane_period = 14;
        spec.lane_offset = 0;
        fabric = comm::with_bus_lanes(fabric, spec);
        modules = comm::with_bus_attachment(modules, 0);
      }
      auto fabric_ptr = std::make_shared<const fpga::Fabric>(std::move(fabric));
      const fpga::PartialRegion region(fabric_ptr);

      const auto tables =
          placer::prepare_tables(region, modules, c.alternatives);
      long shapes = 0, placements = 0;
      for (const auto& t : tables) {
        shapes += static_cast<long>(t.shapes->size());
        placements += static_cast<long>(t.table.size());
      }
      anchors.add(static_cast<double>(placements) /
                  static_cast<double>(std::max(1L, shapes)));

      placer::PlacerOptions options;
      options.use_alternatives = c.alternatives;
      options.time_limit_seconds = config.time_limit;
      options.seed = seed;
      const auto outcome = placer::Placer(region, modules, options).place();
      if (!outcome.solution.feasible) {
        ++infeasible;
        continue;
      }
      const auto report = placer::validate(region, modules, outcome.solution);
      if (!report.ok()) {
        std::cerr << "VALIDATION FAILED: " << report.errors.front() << '\n';
        return 1;
      }
      util.add(placer::spanned_utilization(region, modules, outcome.solution));
      extent.add(outcome.solution.extent);
    }
    table.add_row({c.label, TextTable::pct(util.mean()),
                   TextTable::num(extent.mean(), 1),
                   TextTable::num(anchors.mean(), 0),
                   std::to_string(infeasible)});
  }
  table.print(std::cout,
              "Ablation A5: bus-attachment constraint (ReCoBus integration)");
  std::cout << "expected: bus alignment cuts anchors and utilization; "
               "alternatives recover part of the loss\n";
  return 0;
}
