// Figure 1 — a functionally equivalent module represented with different
// design alternatives (different layouts, same resource demand).
//
// Prints a module's base layout and its derived alternatives: the
// 180-degree rotation, an internal-layout variant (same bounding box,
// memory column moved) and external-layout variants (different bounding
// boxes), exactly the families §V.A evaluates.
#include "bench_common.hpp"

int main() {
  using namespace rr;
  // A representative module: 24 CLBs + 2 embedded memory blocks.
  model::GeneratorParams params = bench::paper_workload_params();
  params.clb_min = params.clb_max = 24;
  params.bram_blocks_min = params.bram_blocks_max = 2;
  params.alternatives = 5;  // the figure shows five layouts
  model::ModuleGenerator generator(params, 1);
  const model::Module module = generator.generate("fig1");

  std::cout << "== Figure 1: design alternatives of one module ==\n"
            << "module " << module.name() << ": "
            << module.demand(0, fpga::ResourceType::kClb) << " CLBs, "
            << module.demand(0, fpga::ResourceType::kBram)
            << " BRAM tiles, " << module.shape_count()
            << " alternative layouts\n\n";
  for (int s = 0; s < module.shape_count(); ++s) {
    const auto& shape = module.shapes()[static_cast<std::size_t>(s)];
    std::cout << "alternative " << s << " (bounding box "
              << shape.bounding_box().width << "x"
              << shape.bounding_box().height << "):\n"
              << model::shape_picture(shape) << '\n';
  }
  std::cout << "All alternatives consume the same resources; they differ in "
               "internal and external layout only.\n";
  return 0;
}
