// R1 — runtime reconfiguration overhead across a configuration schedule:
// replace-all (utilization-first) vs incremental (overhead-first) phase
// placement.
//
// Expected shape: incremental placement keeps persistent modules in place,
// cutting the tiles rewritten per transition (the reconfiguration-time
// proxy the paper's intro says must stay low) at a modest utilization
// cost; replace-all packs each phase tighter but rewrites far more.
#include "bench_common.hpp"

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  config.print(std::cout);
  const int phases = env_int("RRPLACE_PHASES", 5);

  RunningStats util_replace, util_incremental;
  RunningStats tiles_replace, tiles_incremental;
  RunningStats kept_replace, kept_incremental;
  int fallbacks = 0, infeasible = 0;

  for (int run = 0; run < config.runs; ++run) {
    const std::uint64_t seed = config.seed + static_cast<std::uint64_t>(run);
    const auto region = bench::make_eval_region(seed, config.modules);
    model::ModuleGenerator generator(bench::paper_workload_params(), seed);
    // Pool twice the phase size, so phases swap half their content.
    const auto pool = generator.generate_many(config.modules * 2);
    const runtime::Schedule schedule = runtime::make_rolling_schedule(
        static_cast<int>(pool.size()), phases, config.modules,
        /*keep_fraction=*/0.6, seed);

    placer::PlacerOptions options;
    options.time_limit_seconds = config.time_limit;
    options.seed = seed;
    const runtime::ReconfigurationManager manager(*region, pool, options);

    for (const auto policy : {runtime::PlacementPolicy::kReplaceAll,
                              runtime::PlacementPolicy::kIncremental}) {
      const runtime::RunResult result = manager.run(schedule, policy);
      if (result.infeasible_phases() > 0) {
        ++infeasible;
        continue;
      }
      long kept = 0;
      for (const auto& t : result.transitions) kept += t.modules_kept;
      const bool incremental =
          policy == runtime::PlacementPolicy::kIncremental;
      if (incremental) {
        for (const auto& p : result.phases) fallbacks += p.fell_back;
      }
      if (const auto util = result.mean_utilization())
        (incremental ? util_incremental : util_replace).add(*util);
      (incremental ? tiles_incremental : tiles_replace)
          .add(static_cast<double>(result.total_tiles_written()));
      (incremental ? kept_incremental : kept_replace)
          .add(static_cast<double>(kept));
    }
  }

  TextTable table({"Policy", "Mean util.", "Tiles written / schedule",
                   "Modules kept in place"});
  table.add_row({"replace-all", TextTable::pct(util_replace.mean()),
                 TextTable::num(tiles_replace.mean(), 0),
                 TextTable::num(kept_replace.mean(), 1)});
  table.add_row({"incremental", TextTable::pct(util_incremental.mean()),
                 TextTable::num(tiles_incremental.mean(), 0),
                 TextTable::num(kept_incremental.mean(), 1)});
  table.print(std::cout,
              "R1: reconfiguration overhead across a " +
                  std::to_string(phases) + "-phase schedule");
  std::cout << "expected: incremental rewrites far fewer tiles per "
               "transition at a modest utilization cost\n";
  if (fallbacks > 0)
    std::cout << "# " << fallbacks
              << " phase(s) fell back to a full re-place\n";
  if (infeasible > 0)
    std::cout << "# " << infeasible << " schedule(s) had infeasible phases\n";
  return 0;
}
