// Shared helpers for the table/figure bench harnesses.
#pragma once

#include <cstdint>
#include <iostream>
#include <memory>

#include "rrplace.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rr::bench {

/// Evaluation-scale knobs. Defaults are CI-sized; set RRPLACE_FULL=1 to run
/// the paper's full configuration (50 runs x 30 modules), or override the
/// individual RRPLACE_* variables.
struct EvalConfig {
  int runs;
  int modules;
  double time_limit;  // seconds per solve
  std::uint64_t seed;

  static EvalConfig from_env() {
    EvalConfig config{};
    const bool full = env_int("RRPLACE_FULL", 0) != 0;
    config.runs = env_int("RRPLACE_RUNS", full ? 50 : 6);
    config.modules = env_int("RRPLACE_MODULES", full ? 30 : 12);
    config.time_limit =
        env_double("RRPLACE_TIME_LIMIT", full ? 10.0 : 1.0);
    config.seed = static_cast<std::uint64_t>(env_int("RRPLACE_SEED", 2011));
    return config;
  }

  void print(std::ostream& os) const {
    os << "# config: runs=" << runs << " modules=" << modules
       << " time_limit=" << time_limit << "s seed=" << seed
       << "  (set RRPLACE_FULL=1 for the paper-scale run)\n";
  }
};

/// The paper's evaluation workload generator (§V.A): 20-100 CLBs, 0-4
/// embedded memory blocks, four design alternatives.
inline model::GeneratorParams paper_workload_params() {
  model::GeneratorParams params;
  params.clb_min = 20;
  params.clb_max = 100;
  params.bram_blocks_min = 0;
  params.bram_blocks_max = 4;
  params.bram_block_height = 2;
  params.alternatives = 4;
  params.max_height = 14;
  // Modules stay narrower than the BRAM column period of the evaluation
  // device (12), so every layout has fabric-compatible anchors.
  params.max_width = 11;
  return params;
}

/// The evaluation region: the reconfigurable part of the evaluation device
/// (its static right flank is excluded by availability masks). Sized so the
/// workload spans well under the region width even without alternatives.
inline std::shared_ptr<fpga::PartialRegion> make_eval_region(
    std::uint64_t seed, int modules) {
  // Scale the region width with the workload so spanned-area utilization
  // (not feasibility) is what the experiment measures.
  // The minimum of 48 columns keeps at least four BRAM columns available:
  // narrower regions can be genuinely unplaceable for base layouts (wide
  // memory modules competing for too few columns), which would conflate
  // placeability with packing quality in the utilization comparison.
  const int height = 28;
  const int avg_module_cells = 64;
  const int width =
      std::max(48, modules * avg_module_cells * 2 / height);
  fpga::IrregularSpec spec;
  spec.base.bram_period = 12;
  spec.base.bram_offset = 5;
  spec.base.dsp_period = 0;  // the §V workload requests CLB + BRAM only
  spec.base.center_clock_column = true;
  spec.base.edge_io = false;
  auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_irregular(width, height, spec, seed));
  return std::make_shared<fpga::PartialRegion>(fabric);
}

}  // namespace rr::bench
