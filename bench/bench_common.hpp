// Shared helpers for the table/figure bench harnesses.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "rrplace.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rr::bench {

/// Evaluation-scale knobs. Defaults are CI-sized; set RRPLACE_FULL=1 to run
/// the paper's full configuration (50 runs x 30 modules), or override the
/// individual RRPLACE_* variables.
struct EvalConfig {
  int runs;
  int modules;
  double time_limit;  // seconds per solve
  std::uint64_t seed;

  static EvalConfig from_env() {
    EvalConfig config{};
    const bool full = env_int("RRPLACE_FULL", 0) != 0;
    config.runs = env_int("RRPLACE_RUNS", full ? 50 : 6);
    config.modules = env_int("RRPLACE_MODULES", full ? 30 : 12);
    config.time_limit =
        env_double("RRPLACE_TIME_LIMIT", full ? 10.0 : 1.0);
    config.seed = static_cast<std::uint64_t>(env_int("RRPLACE_SEED", 2011));
    return config;
  }

  void print(std::ostream& os) const {
    os << "# config: runs=" << runs << " modules=" << modules
       << " time_limit=" << time_limit << "s seed=" << seed
       << "  (set RRPLACE_FULL=1 for the paper-scale run)\n";
  }

  [[nodiscard]] json::Value to_json() const {
    json::Value doc = json::Value::object();
    doc.set("runs", json::Value(runs));
    doc.set("modules", json::Value(modules));
    doc.set("time_limit", json::Value(time_limit));
    doc.set("seed", json::Value(seed));
    return doc;
  }
};

/// Observability hook for bench harnesses. Construct it first thing in
/// main(): when $RRPLACE_BENCH_JSON is set (1 for the default location,
/// anything else as a directory), it enables metrics collection and, on
/// destruction, writes an `rrplace-bench-v1` record
///
///   {"schema", "bench", "config", "results", "metrics"}
///
/// to BENCH_<name>.json — the trajectory file CI archives and
/// tools/check_stats_json validates. Add result rows via add_result().
class StatsJsonWriter {
 public:
  StatsJsonWriter(std::string bench_name, const EvalConfig& config)
      : name_(std::move(bench_name)) {
    const std::string mode = env_string("RRPLACE_BENCH_JSON", "");
    if (mode.empty() || mode == "0") return;
    enabled_ = true;
    directory_ = mode == "1" ? std::string(".") : mode;
    metrics::set_enabled(true);
    config_ = config.to_json();
  }

  StatsJsonWriter(const StatsJsonWriter&) = delete;
  StatsJsonWriter& operator=(const StatsJsonWriter&) = delete;

  /// Record one named result (means, ratios, ... — harness-defined).
  void add_result(std::string_view key, json::Value value) {
    results_.set(key, std::move(value));
  }

  /// Summaries get the standard {count, mean, min, max} shape.
  void add_result(std::string_view key, const RunningStats& stats) {
    json::Value entry = json::Value::object();
    entry.set("count", json::Value(stats.count()));
    entry.set("mean", json::Value(stats.mean()));
    entry.set("min", json::Value(stats.count() ? stats.min() : 0.0));
    entry.set("max", json::Value(stats.count() ? stats.max() : 0.0));
    results_.set(key, std::move(entry));
  }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  ~StatsJsonWriter() {
    if (!enabled_) return;
    json::Value doc = json::Value::object();
    doc.set("schema", json::Value("rrplace-bench-v1"));
    doc.set("bench", json::Value(name_));
    doc.set("config", config_.is_object() ? std::move(config_)
                                          : json::Value::object());
    doc.set("results", results_.is_object() ? std::move(results_)
                                            : json::Value::object());
    doc.set("metrics", metrics::global().to_json());
    const std::string path = directory_ + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (out) {
      out << doc.dump(2) << '\n';
      std::cout << "# bench record written to " << path << '\n';
    } else {
      std::cerr << "# cannot write bench record to " << path << '\n';
    }
  }

 private:
  std::string name_;
  bool enabled_ = false;
  std::string directory_;
  json::Value config_;
  json::Value results_ = json::Value::object();
};

/// The paper's evaluation workload generator (§V.A): 20-100 CLBs, 0-4
/// embedded memory blocks, four design alternatives.
inline model::GeneratorParams paper_workload_params() {
  model::GeneratorParams params;
  params.clb_min = 20;
  params.clb_max = 100;
  params.bram_blocks_min = 0;
  params.bram_blocks_max = 4;
  params.bram_block_height = 2;
  params.alternatives = 4;
  params.max_height = 14;
  // Modules stay narrower than the BRAM column period of the evaluation
  // device (12), so every layout has fabric-compatible anchors.
  params.max_width = 11;
  return params;
}

/// The evaluation region: the reconfigurable part of the evaluation device
/// (its static right flank is excluded by availability masks). Sized so the
/// workload spans well under the region width even without alternatives.
inline std::shared_ptr<fpga::PartialRegion> make_eval_region(
    std::uint64_t seed, int modules) {
  // Scale the region width with the workload so spanned-area utilization
  // (not feasibility) is what the experiment measures.
  // The minimum of 48 columns keeps at least four BRAM columns available:
  // narrower regions can be genuinely unplaceable for base layouts (wide
  // memory modules competing for too few columns), which would conflate
  // placeability with packing quality in the utilization comparison.
  const int height = 28;
  const int avg_module_cells = 64;
  const int width =
      std::max(48, modules * avg_module_cells * 2 / height);
  fpga::IrregularSpec spec;
  spec.base.bram_period = 12;
  spec.base.bram_offset = 5;
  spec.base.dsp_period = 0;  // the §V workload requests CLB + BRAM only
  spec.base.center_clock_column = true;
  spec.base.edge_io = false;
  auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_irregular(width, height, spec, seed));
  return std::make_shared<fpga::PartialRegion>(fabric);
}

}  // namespace rr::bench
