// Ablation A4 — the CP placer against classical heuristics (the related-
// work positioning of §II): greedy bottom-left first-fit decreasing,
// simulated annealing, and the constraint-programming placer, all with
// design alternatives enabled.
//
// Expected shape: CP >= SA >= greedy on utilization; greedy is orders of
// magnitude faster; SA sits between on both axes.
#include "bench_common.hpp"

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  config.print(std::cout);

  RunningStats greedy_util, greedy_time, sa_util, sa_time, cp_util, cp_time;
  RunningStats greedy_extent, sa_extent, cp_extent;
  RunningStats slot_util, slot_time, slot_extent;
  int slot_infeasible = 0;

  for (int run = 0; run < config.runs; ++run) {
    const std::uint64_t seed = config.seed + static_cast<std::uint64_t>(run);
    const auto region = bench::make_eval_region(seed, config.modules);
    model::ModuleGenerator generator(bench::paper_workload_params(), seed);
    const auto modules = generator.generate_many(config.modules);

    baseline::SlotOptions slot_options;
    slot_options.slot_width = 12;  // the device's BRAM column period
    const auto slots = baseline::place_slots(*region, modules, slot_options);
    if (slots.solution.feasible) {
      slot_util.add(
          placer::spanned_utilization(*region, modules, slots.solution));
      slot_time.add(slots.seconds);
      slot_extent.add(slots.solution.extent);
    } else {
      ++slot_infeasible;
    }

    const auto greedy = baseline::place_greedy(*region, modules);
    if (greedy.solution.feasible) {
      greedy_util.add(
          placer::spanned_utilization(*region, modules, greedy.solution));
      greedy_time.add(greedy.seconds);
      greedy_extent.add(greedy.solution.extent);
    }

    baseline::AnnealingOptions sa_options;
    sa_options.time_limit_seconds = config.time_limit;
    sa_options.seed = seed;
    const auto sa = baseline::place_annealing(*region, modules, sa_options);
    if (sa.solution.feasible) {
      sa_util.add(
          placer::spanned_utilization(*region, modules, sa.solution));
      sa_time.add(sa.seconds);
      sa_extent.add(sa.solution.extent);
    }

    placer::PlacerOptions cp_options;
    cp_options.time_limit_seconds = config.time_limit;
    cp_options.seed = seed;
    const auto cp = placer::Placer(*region, modules, cp_options).place();
    if (cp.solution.feasible) {
      const auto report = placer::validate(*region, modules, cp.solution);
      if (!report.ok()) {
        std::cerr << "VALIDATION FAILED: " << report.errors.front() << '\n';
        return 1;
      }
      cp_util.add(
          placer::spanned_utilization(*region, modules, cp.solution));
      cp_time.add(cp.seconds);
      cp_extent.add(cp.solution.extent);
    }
  }

  TextTable table({"Placer", "Mean util.", "Mean extent", "Mean time"});
  // Slot-style placement frequently cannot fit the workload at all on the
  // shared region (one slot-run per module): that infeasibility is the
  // result, so the row shows '-' rather than a misleading 0%.
  const bool slot_any = slot_util.count() > 0;
  table.add_row({"1D slot-style (FFD)",
                 slot_any ? TextTable::pct(slot_util.mean()) : "- (infeasible)",
                 slot_any ? TextTable::num(slot_extent.mean(), 1) : "-",
                 slot_any ? TextTable::num(slot_time.mean(), 4) + "s" : "-"});
  table.add_row({"greedy bottom-left (FFD)", TextTable::pct(greedy_util.mean()),
                 TextTable::num(greedy_extent.mean(), 1),
                 TextTable::num(greedy_time.mean(), 4) + "s"});
  table.add_row({"simulated annealing", TextTable::pct(sa_util.mean()),
                 TextTable::num(sa_extent.mean(), 1),
                 TextTable::num(sa_time.mean(), 4) + "s"});
  table.add_row({"constraint programming", TextTable::pct(cp_util.mean()),
                 TextTable::num(cp_extent.mean(), 1),
                 TextTable::num(cp_time.mean(), 4) + "s"});
  table.print(std::cout, "Ablation A4: CP placer vs classical baselines");
  std::cout << "expected: CP >= SA >= greedy >= 1D slots on utilization; "
               "the heuristics are fastest by orders of magnitude\n";
  if (slot_infeasible > 0)
    std::cout << "# " << slot_infeasible
              << " slot-style solve(s) infeasible (slot exhaustion)\n";
  return 0;
}
