// Batch anchor-feasibility kernel microbench.
//
// Three measurements over the paper's evaluation fabric and workload, each
// cross-checked against its scalar differential oracle (any disagreement
// fails the bench — the batch kernels must be bit-identical, fast or not):
//
//   anchor_speedup   — batch valid-anchor bitmaps (erosion) vs the
//                      per-anchor covers_shifted loop, over every shape of
//                      the generated workload.
//   conflict_speedup — batch conflict bitmaps (dilation) vs one
//                      intersects_shifted call per anchor, against a
//                      fragmented occupancy built from the workload.
//   word_kernel_speedup — the dispatched word kernels vs the scalar
//                      reference table on raw arrays (the shift-AND /
//                      shifted-popcount inner loops everything above
//                      bottoms out in). ~1x on the scalar dispatch leg by
//                      construction; CI pins it >= 2x on the SIMD leg only.
#include <chrono>

#include "bench_common.hpp"
#include "geost/anchor_kernel.hpp"
#include "util/rng.hpp"
#include "util/simd/simd.hpp"

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  config.print(std::cout);
  std::cout << "# simd level: " << simd::level_name(simd::active_level())
            << '\n';
  bench::StatsJsonWriter record("anchor_kernel", config);

  RunningStats anchor_speedup, conflict_speedup;
  RunningStats anchor_batch_ms, anchor_scalar_ms;
  RunningStats conflict_batch_ms, conflict_scalar_ms;
  int mismatches = 0;

  for (int run = 0; run < config.runs; ++run) {
    const std::uint64_t seed = config.seed + static_cast<std::uint64_t>(run);
    const auto region = bench::make_eval_region(seed, config.modules);
    model::ModuleGenerator generator(bench::paper_workload_params(), seed);
    const auto modules = generator.generate_many(config.modules);

    // --- Valid-anchor sweep: batch erosion vs per-anchor covers.
    double batch_ms = 0, scalar_ms = 0;
    for (const model::Module& module : modules) {
      for (const geost::ShapeFootprint& shape : module.shapes()) {
        double t0 = now_ms();
        const auto batch = geost::compute_valid_anchors(region->masks(), shape);
        batch_ms += now_ms() - t0;
        t0 = now_ms();
        const auto scalar =
            geost::compute_valid_anchors_scalar(region->masks(), shape);
        scalar_ms += now_ms() - t0;
        if (batch != scalar) ++mismatches;
      }
    }
    anchor_batch_ms.add(batch_ms);
    anchor_scalar_ms.add(scalar_ms);
    if (batch_ms > 0) anchor_speedup.add(scalar_ms / batch_ms);

    // --- Conflict sweep against a fragmented occupancy: greedily place
    // every other module bottom-left, then ask, for each shape of the
    // remaining modules, which anchors would conflict.
    baseline::OnlinePlacer placer(*region);
    for (std::size_t m = 0; m < modules.size(); m += 2)
      placer.place(static_cast<int>(m), modules[m]);
    const BitMatrix& occupancy = placer.occupied_matrix();
    batch_ms = scalar_ms = 0;
    for (std::size_t m = 1; m < modules.size(); m += 2) {
      for (const geost::ShapeFootprint& shape : modules[m].shapes()) {
        double t0 = now_ms();
        BitMatrix conflict(occupancy.rows(), occupancy.cols());
        geost::accumulate_conflicts(conflict, occupancy, shape.mask(), 0,
                                    occupancy.rows());
        batch_ms += now_ms() - t0;
        t0 = now_ms();
        BitMatrix reference(occupancy.rows(), occupancy.cols());
        for (int y = 0; y < occupancy.rows(); ++y) {
          for (int x = 0; x < occupancy.cols(); ++x) {
            if (occupancy.intersects_shifted(shape.mask(), y, x))
              reference.set(y, x, true);
          }
        }
        scalar_ms += now_ms() - t0;
        if (conflict != reference) ++mismatches;
      }
    }
    conflict_batch_ms.add(batch_ms);
    conflict_scalar_ms.add(scalar_ms);
    if (batch_ms > 0) conflict_speedup.add(scalar_ms / batch_ms);
  }

  // --- Raw word kernels: dispatched table vs scalar reference on arrays
  // sized like a fabric occupancy row sweep.
  RunningStats word_speedup;
  {
    constexpr std::size_t kWords = 4096;
    constexpr int kReps = 400;
    Rng rng(config.seed);
    std::vector<std::uint64_t> a(kWords), b(kWords), scratch(kWords);
    for (std::size_t i = 0; i < kWords; ++i) {
      a[i] = rng();
      b[i] = rng();
    }
    const simd::Kernels& dispatched = simd::active();
    const simd::Kernels& scalar = simd::scalar_kernels();
    for (int round = 0; round < 5; ++round) {
      const long shift = 7 + round * 13;
      std::size_t sum_dispatched = 0, sum_scalar = 0;
      double t0 = now_ms();
      for (int rep = 0; rep < kReps; ++rep) {
        scratch = a;
        sum_dispatched += dispatched.shifted_and_popcount(a.data(), kWords,
                                                          b.data(), kWords,
                                                          shift);
        sum_dispatched += dispatched.shift_and_into(scratch.data(), kWords,
                                                    b.data(), kWords, shift);
      }
      const double dispatched_ms = now_ms() - t0;
      const std::vector<std::uint64_t> dispatched_words = scratch;
      t0 = now_ms();
      for (int rep = 0; rep < kReps; ++rep) {
        scratch = a;
        sum_scalar += scalar.shifted_and_popcount(a.data(), kWords, b.data(),
                                                  kWords, shift);
        sum_scalar += scalar.shift_and_into(scratch.data(), kWords, b.data(),
                                            kWords, shift);
      }
      const double scalar_ms = now_ms() - t0;
      if (sum_dispatched != sum_scalar || dispatched_words != scratch)
        ++mismatches;
      if (dispatched_ms > 0) word_speedup.add(scalar_ms / dispatched_ms);
    }
  }

  TextTable table({"Metric", "Batch/dispatched", "Scalar oracle", "Speedup"});
  table.add_row({"valid anchors",
                 TextTable::num(anchor_batch_ms.mean(), 2) + "ms",
                 TextTable::num(anchor_scalar_ms.mean(), 2) + "ms",
                 TextTable::num(anchor_speedup.mean(), 2) + "x"});
  table.add_row({"conflict bitmaps",
                 TextTable::num(conflict_batch_ms.mean(), 2) + "ms",
                 TextTable::num(conflict_scalar_ms.mean(), 2) + "ms",
                 TextTable::num(conflict_speedup.mean(), 2) + "x"});
  table.add_row({"word kernels", "-", "-",
                 TextTable::num(word_speedup.mean(), 2) + "x"});
  table.print(std::cout,
              "Batch anchor-feasibility kernels vs scalar oracles "
              "(bit-identical results required)");

  record.add_result("anchor_speedup", anchor_speedup);
  record.add_result("conflict_speedup", conflict_speedup);
  record.add_result("word_kernel_speedup", word_speedup);
  record.add_result("anchor_ms_batch", anchor_batch_ms);
  record.add_result("anchor_ms_scalar", anchor_scalar_ms);
  record.add_result("conflict_ms_batch", conflict_batch_ms);
  record.add_result("conflict_ms_scalar", conflict_scalar_ms);
  record.add_result("mismatches", json::Value(mismatches));
  record.add_result("simd_level",
                    json::Value(simd::level_name(simd::active_level())));
  if (mismatches > 0) {
    std::cerr << "KERNEL MISMATCH: batch kernels disagreed with their "
                 "scalar oracles on "
              << mismatches << " input(s)\n";
    return 1;
  }
  return 0;
}
