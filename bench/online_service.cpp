// A6 — online service level: request acceptance under runtime churn.
//
// The related work ([1], [4], [5]) measures reconfigurable systems by the
// fraction of module requests that can be fulfilled; [1] reports 36%
// average utilization for online placement on a heterogeneous FPGA. This
// bench replays identical arrival/departure traces through the online
// bottom-left placer, with and without design alternatives.
//
// Expected shape: alternatives raise both the acceptance ratio and the
// sustained occupancy; the on-reject defragmentation pass raises them
// further on the same traces (fragmentation, not capacity, causes most
// rejects); absolute occupancy sits well below the offline optimum of
// Table I (fragmentation under churn).
#include "bench_common.hpp"
#include "util/rng.hpp"

namespace {

struct TraceResult {
  double acceptance = 0.0;
  double occupancy = 0.0;
};

/// Replay the churn trace derived from `seed` (identical across
/// configurations) through one OnlinePlacer.
TraceResult replay_trace(rr::baseline::OnlinePlacer& placer,
                         const std::vector<rr::model::Module>& pool,
                         std::uint64_t seed, int steps) {
  rr::Rng rng(seed ^ 0xABCDEF);
  std::vector<int> live;
  int requests = 0, accepted = 0, next_id = 0;
  rr::RunningStats occupancy;
  for (int step = 0; step < steps; ++step) {
    if (live.empty() || rng.chance(0.55)) {
      ++requests;
      const auto& module = pool[rng.pick_index(pool)];
      if (placer.place(next_id, module)) {
        live.push_back(next_id);
        ++accepted;
      }
      ++next_id;
    } else {
      const std::size_t pick = rng.pick_index(live);
      placer.remove(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    occupancy.add(placer.occupancy());
  }
  TraceResult result;
  result.acceptance =
      requests > 0 ? static_cast<double>(accepted) / requests : 0.0;
  result.occupancy = occupancy.mean();
  return result;
}

}  // namespace

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  bench::StatsJsonWriter record("online_service", config);
  config.print(std::cout);
  const int steps = env_int("RRPLACE_STEPS", 400);
  const double defrag_deadline = env_double("RRPLACE_DEFRAG_DEADLINE", 0.05);

  RunningStats accept_without, accept_with, accept_defrag;
  RunningStats occ_without, occ_with, occ_defrag;
  baseline::OnlineDefragStats defrag_totals;
  for (int run = 0; run < config.runs; ++run) {
    const std::uint64_t seed = config.seed + static_cast<std::uint64_t>(run);
    const auto region = bench::make_eval_region(seed, config.modules);
    model::ModuleGenerator generator(bench::paper_workload_params(), seed);
    const auto pool = generator.generate_many(config.modules);

    // Three configurations over the identical trace: base layouts only,
    // design alternatives, and alternatives plus the defragmentation pass.
    for (const int variant : {0, 1, 2}) {
      baseline::OnlineOptions options;
      options.use_alternatives = variant >= 1;
      if (variant == 2) {
        options.defrag.deadline_seconds = defrag_deadline;
        options.defrag.seed = seed;
      }
      baseline::OnlinePlacer placer(*region, options);
      const TraceResult result = replay_trace(placer, pool, seed, steps);
      (variant == 0   ? accept_without
       : variant == 1 ? accept_with
                      : accept_defrag)
          .add(result.acceptance);
      (variant == 0 ? occ_without : variant == 1 ? occ_with : occ_defrag)
          .add(result.occupancy);
      if (variant == 2) {
        const baseline::OnlineDefragStats& stats = placer.defrag_stats();
        defrag_totals.attempts += stats.attempts;
        defrag_totals.successes += stats.successes;
        defrag_totals.exact_successes += stats.exact_successes;
        defrag_totals.greedy_successes += stats.greedy_successes;
        defrag_totals.relocated_modules += stats.relocated_modules;
        defrag_totals.relocated_tiles += stats.relocated_tiles;
        defrag_totals.deadline_expiries += stats.deadline_expiries;
        defrag_totals.rejects += stats.rejects;
        defrag_totals.retry_skips += stats.retry_skips;
        defrag_totals.budget_skips += stats.budget_skips;
      }
    }
  }

  TextTable table({"Configuration", "Acceptance ratio", "Mean occupancy"});
  table.add_row({"without alternatives", TextTable::pct(accept_without.mean()),
                 TextTable::pct(occ_without.mean())});
  table.add_row({"with alternatives", TextTable::pct(accept_with.mean()),
                 TextTable::pct(occ_with.mean())});
  table.add_row({"alternatives + defrag", TextTable::pct(accept_defrag.mean()),
                 TextTable::pct(occ_defrag.mean())});
  table.print(std::cout, "A6: online service level under churn (" +
                             std::to_string(steps) + " steps)");
  std::cout << "reference point: [1] reports 36% average utilization for "
               "online placement on a heterogeneous FPGA\n";
  std::cout << "defrag (" << defrag_deadline << "s deadline): "
            << defrag_totals.attempts << " passes, " << defrag_totals.successes
            << " admitted (" << defrag_totals.exact_successes << " exact, "
            << defrag_totals.greedy_successes << " greedy), "
            << defrag_totals.relocated_modules << " modules / "
            << defrag_totals.relocated_tiles << " tiles relocated\n";

  record.add_result("acceptance_without", accept_without);
  record.add_result("acceptance_with", accept_with);
  record.add_result("acceptance_defrag", accept_defrag);
  record.add_result("occupancy_without", occ_without);
  record.add_result("occupancy_with", occ_with);
  record.add_result("occupancy_defrag", occ_defrag);
  record.add_result("acceptance_gain",
                    json::Value(accept_defrag.mean() - accept_with.mean()));
  record.add_result("defrag_attempts", json::Value(defrag_totals.attempts));
  record.add_result("defrag_successes", json::Value(defrag_totals.successes));
  record.add_result("defrag_exact_successes",
                    json::Value(defrag_totals.exact_successes));
  record.add_result("defrag_greedy_successes",
                    json::Value(defrag_totals.greedy_successes));
  record.add_result("defrag_relocated_modules",
                    json::Value(defrag_totals.relocated_modules));
  record.add_result("defrag_relocated_tiles",
                    json::Value(defrag_totals.relocated_tiles));
  record.add_result("defrag_deadline_expiries",
                    json::Value(defrag_totals.deadline_expiries));
  record.add_result("defrag_rejects", json::Value(defrag_totals.rejects));

  // Defragmentation coda: greedily snapshot one churned workload and
  // compact it with the CP machinery ([12]'s motivation).
  {
    const auto region = bench::make_eval_region(config.seed, config.modules);
    model::ModuleGenerator generator(bench::paper_workload_params(),
                                     config.seed);
    const auto modules = generator.generate_many(config.modules);
    const auto greedy = baseline::place_greedy(*region, modules);
    if (greedy.solution.feasible) {
      placer::CompactionOptions compaction;
      compaction.time_limit_seconds = config.time_limit;
      compaction.seed = config.seed;
      const auto result =
          placer::compact(*region, modules, greedy.solution, compaction);
      std::cout << "compaction: greedy extent " << result.extent_before
                << " -> " << result.extent_after << " columns ("
                << result.relocated << " modules relocated, "
                << result.iterations << " LNS iterations"
                << (result.optimal ? ", optimal" : "") << ")\n";
    }
  }
  return 0;
}
