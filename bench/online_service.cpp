// A6 — online service level: request acceptance under runtime churn.
//
// The related work ([1], [4], [5]) measures reconfigurable systems by the
// fraction of module requests that can be fulfilled; [1] reports 36%
// average utilization for online placement on a heterogeneous FPGA. This
// bench replays identical arrival/departure traces through the online
// bottom-left placer, with and without design alternatives.
//
// Expected shape: alternatives raise both the acceptance ratio and the
// sustained occupancy; absolute occupancy sits well below the offline
// optimum of Table I (fragmentation under churn).
#include "bench_common.hpp"
#include "util/rng.hpp"

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  config.print(std::cout);
  const int steps = env_int("RRPLACE_STEPS", 400);

  RunningStats accept_with, accept_without, occ_with, occ_without;
  for (int run = 0; run < config.runs; ++run) {
    const std::uint64_t seed = config.seed + static_cast<std::uint64_t>(run);
    const auto region = bench::make_eval_region(seed, config.modules);
    model::ModuleGenerator generator(bench::paper_workload_params(), seed);
    const auto pool = generator.generate_many(config.modules);

    for (const bool alternatives : {false, true}) {
      baseline::OnlineOptions options;
      options.use_alternatives = alternatives;
      baseline::OnlinePlacer placer(*region, options);
      Rng rng(seed ^ 0xABCDEF);  // identical trace for both configurations
      std::vector<int> live;
      int requests = 0, accepted = 0, next_id = 0;
      RunningStats occupancy;
      for (int step = 0; step < steps; ++step) {
        if (live.empty() || rng.chance(0.55)) {
          ++requests;
          const auto& module = pool[rng.pick_index(pool)];
          if (placer.place(next_id, module)) {
            live.push_back(next_id);
            ++accepted;
          }
          ++next_id;
        } else {
          const std::size_t pick = rng.pick_index(live);
          placer.remove(live[pick]);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        }
        occupancy.add(placer.occupancy());
      }
      const double ratio =
          requests > 0 ? static_cast<double>(accepted) / requests : 0.0;
      (alternatives ? accept_with : accept_without).add(ratio);
      (alternatives ? occ_with : occ_without).add(occupancy.mean());
    }
  }

  TextTable table({"Configuration", "Acceptance ratio", "Mean occupancy"});
  table.add_row({"without alternatives", TextTable::pct(accept_without.mean()),
                 TextTable::pct(occ_without.mean())});
  table.add_row({"with alternatives", TextTable::pct(accept_with.mean()),
                 TextTable::pct(occ_with.mean())});
  table.print(std::cout, "A6: online service level under churn (" +
                             std::to_string(steps) + " steps)");
  std::cout << "reference point: [1] reports 36% average utilization for "
               "online placement on a heterogeneous FPGA\n";

  // Defragmentation coda: greedily snapshot one churned workload and
  // compact it with the CP machinery ([12]'s motivation).
  {
    const auto region = bench::make_eval_region(config.seed, config.modules);
    model::ModuleGenerator generator(bench::paper_workload_params(),
                                     config.seed);
    const auto modules = generator.generate_many(config.modules);
    const auto greedy = baseline::place_greedy(*region, modules);
    if (greedy.solution.feasible) {
      placer::CompactionOptions compaction;
      compaction.time_limit_seconds = config.time_limit;
      compaction.seed = config.seed;
      const auto result =
          placer::compact(*region, modules, greedy.solution, compaction);
      std::cout << "compaction: greedy extent " << result.extent_before
                << " -> " << result.extent_after << " columns ("
                << result.relocated << " modules relocated, "
                << result.iterations << " LNS iterations"
                << (result.optimal ? ", optimal" : "") << ")\n";
    }
  }
  return 0;
}
