// Free-space index: online admission-decision latency, incremental
// maximal-empty-rectangle index vs the occupancy-bitmap sweep.
//
// Each scenario is a (grid, target occupancy) pair. Both arms share one
// region and one prewarmed module-table source (the service hot path:
// tables cached, the decision itself is what costs), fill to the target
// occupancy with an identical first-fit prefix, then answer the same
// randomized admission probes — place, and remove again on accept, so
// occupancy stays at the level under test. The sweep arm scans the anchor
// table against the occupancy bitmap per probe; the index arm answers from
// the incrementally maintained MER set and pays occupy/release maintenance
// on accepted probes. Grids include a 10x-scale fabric where the sweep's
// per-probe anchor scan is at its worst.
//
// Expected shape: index_speedup (sweep seconds / index seconds, aggregated
// over the >=50%-occupancy scenarios on the large grid) lands well above
// 2x, growing with grid size and occupancy. On an *empty* grid the sweep
// wins instead — its first-fit scan accepts at the first anchor while the
// index pays MER split/merge maintenance for every accepted probe — which
// is why the index earns its keep exactly where admission is hard (the
// fragmented, mostly-full fabric the online setting lives in), and why the
// empty-grid rows are reported but not pinned. decision_mismatches stays
// at exactly 0 — the two arms are differential oracles of each other, and
// a single divergent accept/reject or anchor is a correctness bug, not a
// tuning matter.
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "util/rng.hpp"

namespace {

/// Prewarmed table source over a fixed library: the bench-side stand-in for
/// the service's SolveContext (same prepare_tables code path, keyed by
/// module name).
class PreparedTables final : public rr::baseline::ModuleTableSource {
 public:
  PreparedTables(const rr::fpga::PartialRegion& region,
                 std::span<const rr::model::Module> library)
      : tables_(rr::placer::prepare_tables(region, library, true)) {
    for (std::size_t i = 0; i < library.size(); ++i)
      index_.emplace(library[i].name(), i);
  }

  [[nodiscard]] const rr::placer::ModuleTables* lookup(
      const rr::model::Module& module) override {
    const auto it = index_.find(module.name());
    return it == index_.end() ? nullptr : &tables_[it->second];
  }

 private:
  std::vector<rr::placer::ModuleTables> tables_;
  std::unordered_map<std::string, std::size_t> index_;
};

struct ProbeDecision {
  bool accepted = false;
  int shape = 0;
  int x = 0;
  int y = 0;

  bool operator==(const ProbeDecision&) const = default;
};

struct ArmRun {
  double fill_occupancy = 0.0;
  double probe_seconds = 0.0;
  std::vector<ProbeDecision> decisions;
};

/// Fill to `target` occupancy with a deterministic first-fit prefix, then
/// time `probes` place(+remove-on-accept) admission probes. Arms differ
/// only in options.free_space_index, so fills and probe decisions must be
/// bit-identical between them.
ArmRun run_arm(const rr::fpga::PartialRegion& region,
               std::span<const rr::model::Module> library,
               PreparedTables& tables, bool use_index, double target,
               int probes, std::uint64_t seed) {
  rr::baseline::OnlineOptions options;
  options.free_space_index = use_index;
  rr::baseline::OnlinePlacer placer(region, options);
  placer.set_table_source(&tables);

  rr::Rng rng(seed);
  int next_id = 0;
  int consecutive_rejects = 0;
  while (placer.occupancy() < target && consecutive_rejects < 50) {
    const std::size_t m = rng.bounded(library.size());
    if (placer.place(next_id++, library[m]).has_value())
      consecutive_rejects = 0;
    else
      ++consecutive_rejects;
  }

  ArmRun run;
  run.fill_occupancy = placer.occupancy();
  run.decisions.reserve(static_cast<std::size_t>(probes));
  constexpr int kProbeId = 1 << 24;  // clear of every fill id
  rr::Stopwatch watch;
  for (int i = 0; i < probes; ++i) {
    const std::size_t m = rng.bounded(library.size());
    const auto placement = placer.place(kProbeId, library[m]);
    ProbeDecision decision;
    if (placement.has_value()) {
      decision = ProbeDecision{true, placement->shape, placement->x,
                               placement->y};
      placer.remove(kProbeId);
    }
    run.decisions.push_back(decision);
  }
  run.probe_seconds = watch.seconds();
  return run;
}

struct Scenario {
  const char* grid;
  double occupancy;
  bool large;
};

}  // namespace

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  bench::StatsJsonWriter record("free_space", config);
  config.print(std::cout);
  const int probes = env_int("RRPLACE_STEPS", 200);

  model::ModuleGenerator generator(bench::paper_workload_params(),
                                   config.seed);
  const auto library = generator.generate_many(config.modules);

  // The evaluation-device region plus a 10x-width fabric (same column
  // structure) where per-probe anchor scans are an order of magnitude
  // larger.
  const auto eval_region = bench::make_eval_region(config.seed, config.modules);
  fpga::IrregularSpec spec;
  spec.base.bram_period = 12;
  spec.base.bram_offset = 5;
  spec.base.dsp_period = 0;
  spec.base.center_clock_column = true;
  spec.base.edge_io = false;
  const auto large_fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_irregular(480, 28, spec, config.seed));
  const auto large_region =
      std::make_shared<fpga::PartialRegion>(large_fabric);

  PreparedTables eval_tables(*eval_region, library);
  PreparedTables large_tables(*large_region, library);

  const Scenario scenarios[] = {
      {"eval", 0.0, false},  {"eval", 0.5, false},  {"eval", 0.8, false},
      {"large", 0.0, true},  {"large", 0.5, true},  {"large", 0.8, true},
  };

  std::vector<RunningStats> speedups(std::size(scenarios));
  std::vector<RunningStats> index_rates(std::size(scenarios));
  std::vector<RunningStats> sweep_rates(std::size(scenarios));
  std::vector<double> occupancies(std::size(scenarios), 0.0);
  RunningStats large_hot_speedup;  // the pinned aggregate
  long mismatches = 0;

  for (int run = 0; run < config.runs; ++run) {
    for (std::size_t s = 0; s < std::size(scenarios); ++s) {
      const Scenario& scenario = scenarios[s];
      const fpga::PartialRegion& region =
          scenario.large ? *large_region : *eval_region;
      PreparedTables& tables = scenario.large ? large_tables : eval_tables;
      const std::uint64_t seed =
          config.seed + 1000 * static_cast<std::uint64_t>(s) +
          static_cast<std::uint64_t>(run);
      const ArmRun sweep = run_arm(region, library, tables, false,
                                   scenario.occupancy, probes, seed);
      const ArmRun index = run_arm(region, library, tables, true,
                                   scenario.occupancy, probes, seed);
      occupancies[s] = index.fill_occupancy;
      for (std::size_t i = 0; i < sweep.decisions.size(); ++i)
        if (sweep.decisions[i] != index.decisions[i]) ++mismatches;
      if (index.probe_seconds > 0.0 && sweep.probe_seconds > 0.0) {
        const double speedup = sweep.probe_seconds / index.probe_seconds;
        speedups[s].add(speedup);
        if (scenario.large && scenario.occupancy >= 0.5)
          large_hot_speedup.add(speedup);
        index_rates[s].add(probes / index.probe_seconds);
        sweep_rates[s].add(probes / sweep.probe_seconds);
      }
    }
  }

  TextTable table({"Grid", "Occupancy", "Sweep (dec/s)", "Index (dec/s)",
                   "Speedup"});
  for (std::size_t s = 0; s < std::size(scenarios); ++s) {
    table.add_row({scenarios[s].grid, TextTable::pct(occupancies[s]),
                   TextTable::num(sweep_rates[s].mean(), 0),
                   TextTable::num(index_rates[s].mean(), 0),
                   TextTable::num(speedups[s].mean(), 2) + "x"});
  }
  table.print(std::cout,
              "Admission decisions: MER index vs occupancy-bitmap sweep (" +
                  std::to_string(probes) + " probes/scenario)");
  std::cout << "index speedup (large grid, >=50% occupancy): "
            << TextTable::num(large_hot_speedup.mean(), 2)
            << "x  decision mismatches: " << mismatches << '\n';

  record.add_result("probes", json::Value(probes));
  record.add_result("index_speedup", large_hot_speedup);
  record.add_result("decision_mismatches", json::Value(mismatches));
  for (std::size_t s = 0; s < std::size(scenarios); ++s) {
    const std::string key = std::string(scenarios[s].grid) + "_" +
                            std::to_string(static_cast<int>(
                                scenarios[s].occupancy * 100));
    record.add_result("speedup_" + key, speedups[s]);
    record.add_result("index_decisions_per_sec_" + key, index_rates[s]);
    record.add_result("sweep_decisions_per_sec_" + key, sweep_rates[s]);
  }
  return 0;
}
