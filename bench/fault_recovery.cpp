// A7 — availability under fabric degradation: fault injection and
// deadline-bounded recovery.
//
// Runtime reconfigurable systems are also repair mechanisms: when a tile
// dies, the hit module can be re-placed elsewhere instead of taking the
// device down. This bench loads the Table I workload onto the evaluation
// device, injects permanent single-tile faults at a 1% tile rate (one
// event per tile, uniformly over the initially available area), and drives
// each event through the tiered recovery pipeline (in-place shape swap,
// local re-place, defrag-assisted relocation) under a per-event deadline.
//
// Expected shape: with design alternatives the large majority of hit
// modules recover within the deadline (the acceptance bar is >= 80%), a
// visible share of them via the zero-disruption in-place swap; without
// alternatives recovery leans on relocation and parks more modules.
// Utilization retained tracks the fraction of initially configured logic
// still in service after the full fault sequence.
#include <set>

#include "bench_common.hpp"
#include "util/rng.hpp"

namespace {

struct RunMetrics {
  double recovered_fraction = 1.0;
  double utilization_retained = 1.0;
  double capacity_retained = 1.0;
  double mean_recovery_seconds = 0.0;
  int modules_hit = 0;
  int parked = 0;
};

RunMetrics replay_faults(rr::runtime::FaultRecoveryManager& manager,
                         const rr::fpga::PartialRegion& region,
                         std::uint64_t seed) {
  // 1% permanent tile fault rate over the initially available area; each
  // tile is its own event so every recovery runs under its own deadline.
  rr::Rng rng(seed ^ 0xFA017);
  const long initial_tiles = manager.occupied_tiles();
  const int fault_count =
      std::max(1, static_cast<int>(region.total_available() / 100));
  std::vector<rr::Point> targets;
  std::set<std::pair<int, int>> chosen;
  while (static_cast<int>(targets.size()) < fault_count) {
    const int x = rng.uniform_int(0, region.width() - 1);
    const int y = rng.uniform_int(0, region.height() - 1);
    if (!region.available(x, y)) continue;
    if (!chosen.insert({x, y}).second) continue;
    targets.push_back(rr::Point{x, y});
  }

  rr::RunningStats recovery_seconds;
  for (const rr::Point& tile : targets) {
    rr::fpga::FaultEvent event;
    event.op = rr::fpga::FaultEvent::Op::kTile;
    event.kind = rr::fpga::FaultKind::kPermanent;
    event.rect = rr::Rect{tile.x, tile.y, 1, 1};
    const auto outcome = manager.on_fault(event);
    for (const auto& recovery : outcome.modules)
      if (recovery.recovered) recovery_seconds.add(recovery.seconds);
  }

  const auto& stats = manager.stats();
  RunMetrics metrics;
  metrics.modules_hit = static_cast<int>(stats.modules_hit);
  metrics.parked = manager.parked_count();
  metrics.recovered_fraction =
      stats.modules_hit > 0 ? static_cast<double>(stats.recovered) /
                                  static_cast<double>(stats.modules_hit)
                            : 1.0;
  metrics.utilization_retained =
      initial_tiles > 0 ? static_cast<double>(manager.occupied_tiles()) /
                              static_cast<double>(initial_tiles)
                        : 1.0;
  metrics.capacity_retained = manager.capacity_retained();
  metrics.mean_recovery_seconds = recovery_seconds.mean();
  return metrics;
}

}  // namespace

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  bench::StatsJsonWriter record("fault_recovery", config);
  config.print(std::cout);
  const double deadline = env_double("RRPLACE_FAULT_DEADLINE", 0.05);

  RunningStats recovered_base, recovered_alt;
  RunningStats retained_base, retained_alt;
  RunningStats capacity, recovery_seconds, hit, parked;
  runtime::FaultRecoveryStats totals;
  int feasible_runs = 0;
  for (int run = 0; run < config.runs; ++run) {
    const std::uint64_t seed = config.seed + static_cast<std::uint64_t>(run);
    const auto region = bench::make_eval_region(seed, config.modules);
    model::ModuleGenerator generator(bench::paper_workload_params(), seed);
    const auto pool = generator.generate_many(config.modules);
    const auto greedy = baseline::place_greedy(*region, pool);
    if (!greedy.solution.feasible) continue;
    ++feasible_runs;

    // Identical fault sequence, with and without design alternatives.
    for (const bool alternatives : {false, true}) {
      runtime::FaultRecoveryOptions options;
      options.deadline_seconds = deadline;
      options.use_alternatives = alternatives;
      options.seed = seed;
      runtime::FaultRecoveryManager manager(*region, options);
      for (const auto& p : greedy.solution.placements)
        manager.admit(p.module, pool[static_cast<std::size_t>(p.module)],
                      p.shape, p.x, p.y);
      const RunMetrics metrics = replay_faults(manager, *region, seed);
      (alternatives ? recovered_alt : recovered_base)
          .add(metrics.recovered_fraction);
      (alternatives ? retained_alt : retained_base)
          .add(metrics.utilization_retained);
      if (alternatives) {
        capacity.add(metrics.capacity_retained);
        recovery_seconds.add(metrics.mean_recovery_seconds);
        hit.add(metrics.modules_hit);
        parked.add(metrics.parked);
        const auto& stats = manager.stats();
        totals.events += stats.events;
        totals.tiles_faulted += stats.tiles_faulted;
        totals.modules_hit += stats.modules_hit;
        totals.recovered += stats.recovered;
        totals.inplace_swaps += stats.inplace_swaps;
        totals.local_replaces += stats.local_replaces;
        totals.defrag_recoveries += stats.defrag_recoveries;
        totals.greedy_recoveries += stats.greedy_recoveries;
        totals.parked += stats.parked;
        totals.retries += stats.retries;
        totals.retry_recoveries += stats.retry_recoveries;
        totals.abandoned += stats.abandoned;
        totals.deadline_expiries += stats.deadline_expiries;
        totals.relocated_modules += stats.relocated_modules;
        totals.relocated_tiles += stats.relocated_tiles;
      }
    }
  }

  TextTable table(
      {"Configuration", "Recovered in deadline", "Utilization retained"});
  table.add_row({"without alternatives", TextTable::pct(recovered_base.mean()),
                 TextTable::pct(retained_base.mean())});
  table.add_row({"with alternatives", TextTable::pct(recovered_alt.mean()),
                 TextTable::pct(retained_alt.mean())});
  table.print(std::cout,
              "A7: availability under 1% permanent tile faults (" +
                  std::to_string(feasible_runs) + " runs, " +
                  TextTable::num(deadline, 3) + "s/event deadline)");
  std::cout << "tiers (with alternatives): " << totals.inplace_swaps
            << " in-place swap, " << totals.local_replaces << " local, "
            << totals.defrag_recoveries << " defrag, "
            << totals.greedy_recoveries << " greedy shake; " << totals.parked
            << " parked, " << totals.retry_recoveries << " revived, "
            << totals.abandoned << " abandoned\n";
  std::cout << "faults: " << totals.events << " events / "
            << totals.tiles_faulted << " tiles, " << totals.modules_hit
            << " modules hit, mean recovery "
            << TextTable::num(recovery_seconds.mean() * 1e3, 3) << "ms\n";

  record.add_result("recovered_fraction", recovered_alt);
  record.add_result("recovered_fraction_base", recovered_base);
  record.add_result("utilization_retained", retained_alt);
  record.add_result("utilization_retained_base", retained_base);
  record.add_result("capacity_retained", capacity);
  record.add_result("recovery_seconds", recovery_seconds);
  record.add_result("modules_hit_mean", hit);
  record.add_result("parked_mean", parked);
  record.add_result("events", json::Value(totals.events));
  record.add_result("tiles_faulted", json::Value(totals.tiles_faulted));
  record.add_result("inplace_swaps", json::Value(totals.inplace_swaps));
  record.add_result("local_replaces", json::Value(totals.local_replaces));
  record.add_result("defrag_recoveries",
                    json::Value(totals.defrag_recoveries));
  record.add_result("greedy_recoveries",
                    json::Value(totals.greedy_recoveries));
  record.add_result("parked", json::Value(totals.parked));
  record.add_result("retry_recoveries", json::Value(totals.retry_recoveries));
  record.add_result("abandoned", json::Value(totals.abandoned));
  record.add_result("deadline_expiries",
                    json::Value(totals.deadline_expiries));
  record.add_result("relocated_modules",
                    json::Value(totals.relocated_modules));
  record.add_result("relocated_tiles", json::Value(totals.relocated_tiles));
  return 0;
}
