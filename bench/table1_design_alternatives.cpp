// Table I — impact of module design alternatives on area utilization and
// execution time.
//
// Reproduces the paper's evaluation: N runs of placing M automatically
// generated modules (20-100 CLBs, 0-4 memory blocks, 4 design alternatives)
// on a heterogeneous region, once with alternatives and once without.
// Expected shape (paper: 53% -> 65% utilization, 2.55s -> 10.82s): the
// "with alternatives" configuration gains roughly 10+ points of spanned
// utilization and costs a multiple of the runtime; resource demand per
// module is unchanged (the CLB / BRAM delta columns stay 0).
#include "bench_common.hpp"

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  config.print(std::cout);
  bench::StatsJsonWriter record("table1_design_alternatives", config);

  RunningStats util_with, util_without, time_with, time_without;
  RunningStats optimal_with, optimal_without;
  int infeasible = 0;

  for (int run = 0; run < config.runs; ++run) {
    const std::uint64_t seed = config.seed + static_cast<std::uint64_t>(run);
    const auto region = bench::make_eval_region(seed, config.modules);
    model::ModuleGenerator generator(bench::paper_workload_params(), seed);
    const auto modules = generator.generate_many(config.modules);

    for (const bool alternatives : {false, true}) {
      placer::PlacerOptions options;
      options.use_alternatives = alternatives;
      options.time_limit_seconds = config.time_limit;
      options.seed = seed;
      placer::Placer placer(*region, modules, options);
      const auto outcome = placer.place();
      if (!outcome.solution.feasible) {
        ++infeasible;
        continue;
      }
      const auto report = placer::validate(*region, modules, outcome.solution);
      if (!report.ok()) {
        std::cerr << "VALIDATION FAILED: " << report.errors.front() << '\n';
        return 1;
      }
      const double util =
          placer::spanned_utilization(*region, modules, outcome.solution);
      (alternatives ? util_with : util_without).add(util);
      (alternatives ? time_with : time_without).add(outcome.seconds);
      (alternatives ? optimal_with : optimal_without)
          .add(outcome.optimal ? 1.0 : 0.0);
    }
  }

  TextTable table({"Type", "Mean Area Util.", "Mean Time", "CLB", "BRAM",
                   "Proven optimal"});
  table.add_row({"No design alternatives", TextTable::pct(util_without.mean()),
                 TextTable::num(time_without.mean(), 3) + "s", "-", "-",
                 TextTable::pct(optimal_without.mean(), 0)});
  table.add_row({"Design alternatives", TextTable::pct(util_with.mean()),
                 TextTable::num(time_with.mean(), 3) + "s", "-", "-",
                 TextTable::pct(optimal_with.mean(), 0)});
  table.add_row(
      {"Change",
       TextTable::num((util_with.mean() - util_without.mean()) * 100.0, 1) +
           " pts",
       TextTable::num(time_with.mean() - time_without.mean(), 3) + "s", "0",
       "0", "-"});
  table.print(std::cout,
              "Table I: impact of module design alternatives on area "
              "utilization and execution time");
  std::cout << "paper reference: 53% -> 65% utilization, 2.55s -> 10.82s "
               "(absolute values depend on hardware and scale; the shape is "
               "what must hold)\n";
  if (infeasible > 0)
    std::cout << "# " << infeasible << " infeasible solves were skipped\n";
  record.add_result("utilization_with_alternatives", util_with);
  record.add_result("utilization_without_alternatives", util_without);
  record.add_result("seconds_with_alternatives", time_with);
  record.add_result("seconds_without_alternatives", time_without);
  record.add_result("infeasible_solves", rr::json::Value(infeasible));

  // Execution-time facet. The paper's 2.55s -> 10.82s compares the time of
  // *optimal* placement: four alternatives quadruple the shape count (30
  // modules -> 120 shapes) and enlarge the search space. Fixed budgets hide
  // that, so this part measures time-to-proven-optimum on instances small
  // enough for exact search in both configurations.
  // The facet is bounded independently of RRPLACE_FULL: exact proofs only
  // succeed on small instances (B&B on >8 modules rarely finishes), and a
  // 30 s cap with at most 8 runs keeps the worst case to minutes.
  const int exact_modules = std::clamp(config.modules / 2, 4, 8);
  const int exact_runs = std::min(config.runs, 8);
  RunningStats exact_time_with, exact_time_without;
  int unproven = 0;
  for (int run = 0; run < exact_runs; ++run) {
    const std::uint64_t seed =
        config.seed + 10000 + static_cast<std::uint64_t>(run);
    const auto region = bench::make_eval_region(seed, exact_modules);
    model::ModuleGenerator generator(bench::paper_workload_params(), seed);
    const auto modules = generator.generate_many(exact_modules);
    double seconds[2] = {0, 0};
    bool proven = true;
    for (const bool alternatives : {false, true}) {
      placer::PlacerOptions options;
      options.mode = placer::PlacerMode::kBranchAndBound;
      options.use_alternatives = alternatives;
      options.time_limit_seconds =
          std::min(30.0, std::max(20.0, config.time_limit * 10));
      options.seed = seed;
      const auto outcome = placer::Placer(*region, modules, options).place();
      proven = proven && outcome.optimal;
      seconds[alternatives] = outcome.seconds;
    }
    if (!proven) {
      ++unproven;
      continue;  // keep the comparison apples-to-apples
    }
    exact_time_without.add(seconds[0]);
    exact_time_with.add(seconds[1]);
  }
  TextTable exact({"Type", "Mean time to proven optimum", "Instances"});
  exact.add_row({"No design alternatives",
                 TextTable::num(exact_time_without.mean(), 3) + "s",
                 std::to_string(exact_time_without.count())});
  exact.add_row({"Design alternatives",
                 TextTable::num(exact_time_with.mean(), 3) + "s",
                 std::to_string(exact_time_with.count())});
  const double ratio =
      exact_time_without.mean() > 0
          ? exact_time_with.mean() / exact_time_without.mean()
          : 0.0;
  exact.add_row({"Ratio", TextTable::num(ratio, 2) + "x", "-"});
  exact.print(std::cout,
              "Table I (execution-time facet): time to optimal placement, " +
                  std::to_string(exact_modules) + " modules");
  std::cout << "paper reference: alternatives raised optimal-placement time "
               "2.55s -> 10.82s (~4.2x)\n";
  if (unproven > 0)
    std::cout << "# " << unproven
              << " instance(s) skipped: optimum not proven within the cap\n";
  record.add_result("exact_seconds_with_alternatives", exact_time_with);
  record.add_result("exact_seconds_without_alternatives",
                    exact_time_without);
  record.add_result("exact_time_ratio", rr::json::Value(ratio));
  return 0;
}
