// Service load: multi-tenant placement-as-a-service throughput and the
// solve-context cache's effect on it.
//
// Identical per-tenant churn scripts (place/remove with occasional
// transient faults and scrub repairs) are pumped through the in-process
// PlacementService twice — once with the shared solve-context cache, once
// with every request paying the full anchor scan — by one submitter thread
// per tenant. All tenants run the same fabric and library, so the cached
// arm prepares the placement tables once and every later acquisition
// (including every post-fault refresh back to the healthy signature) is a
// hit.
//
// Expected shape: the cached arm sustains well over 1.5x the uncached
// throughput with a lower p99 (the scan leaves the request path), the hit
// rate approaches 1, and the per-tenant responses of the two arms are
// bit-identical (mismatches = 0) — cached tables equal freshly scanned
// ones, which is the invariant that makes the cache safe.
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "util/rng.hpp"

namespace {

using rr::service::Request;
using rr::service::RequestOp;
using rr::service::Response;

/// Deterministic churn script for one tenant. Fault events are rare enough
/// that throughput measures placement, common enough that both arms pay
/// context refreshes and displacement recovery. The live count is capped
/// so occupancy stays moderate: at saturation every arm's cost is the
/// (shared) first-fit scan over a full region, which would measure the
/// placer, not the service — the regime a service actually runs in is
/// admit-and-depart, not permanently full.
std::vector<Request> tenant_script(int tenant, std::uint64_t seed,
                                   int requests, int library_size,
                                   int fabric_width, int fabric_height) {
  rr::Rng rng(seed ^ (0x5EC1CE00ULL + static_cast<std::uint64_t>(tenant)));
  constexpr std::size_t kLiveCap = 6;
  std::vector<Request> script;
  script.reserve(static_cast<std::size_t>(requests));
  std::vector<int> live;
  int next_instance = 0;
  bool fault_live = false;
  for (int i = 0; i < requests; ++i) {
    Request request;
    request.tenant = tenant;
    if (rng.chance(0.02)) {
      request.op = RequestOp::kFault;
      if (fault_live && rng.chance(0.5)) {
        request.fault.op = rr::fpga::FaultEvent::Op::kRepairTransient;
        fault_live = false;
      } else {
        request.fault.op = rr::fpga::FaultEvent::Op::kTile;
        request.fault.kind = rr::fpga::FaultKind::kTransient;
        request.fault.rect =
            rr::Rect{rng.uniform_int(0, fabric_width - 1),
                     rng.uniform_int(0, fabric_height - 1), 1, 1};
        fault_live = true;
      }
    } else if (!live.empty() && (live.size() >= kLiveCap || rng.chance(0.3))) {
      request.op = RequestOp::kRemove;
      const std::size_t pick = rng.pick_index(live);
      request.instance = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      request.op = RequestOp::kPlace;
      request.instance = next_instance++;
      request.module = rng.uniform_int(0, library_size - 1);
      live.push_back(request.instance);
    }
    script.push_back(request);
  }
  return script;
}

struct ArmResult {
  rr::service::ServiceStats stats;
  double seconds = 0.0;
  double throughput = 0.0;
  std::vector<std::vector<Response>> responses;  // per tenant, in order
};

/// Run every script through one service instance, one submitter thread per
/// tenant, and collect the ordered per-tenant responses.
ArmResult run_arm(const std::shared_ptr<const rr::fpga::Fabric>& fabric,
                  const std::vector<rr::model::Module>& library,
                  const std::vector<std::vector<Request>>& scripts,
                  int workers, bool cache_enabled) {
  const int tenants = static_cast<int>(scripts.size());
  std::vector<rr::service::Tenant::Config> configs;
  configs.reserve(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    rr::service::Tenant::Config config;
    config.fabric = fabric;
    config.library = library;
    configs.push_back(std::move(config));
  }
  rr::service::ServiceOptions options;
  options.workers = workers;
  rr::service::PlacementService service(std::move(configs), options,
                                        cache_enabled);

  ArmResult result;
  result.responses.resize(static_cast<std::size_t>(tenants));
  rr::Stopwatch watch;
  {
    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<std::size_t>(tenants));
    for (int t = 0; t < tenants; ++t) {
      submitters.emplace_back([&, t] {
        const auto& script = scripts[static_cast<std::size_t>(t)];
        std::vector<std::future<Response>> futures;
        futures.reserve(script.size());
        for (const Request& request : script)
          futures.push_back(service.submit(request));
        auto& out = result.responses[static_cast<std::size_t>(t)];
        out.reserve(futures.size());
        for (auto& future : futures) out.push_back(future.get());
      });
    }
    for (std::thread& thread : submitters) thread.join();
  }
  result.seconds = watch.seconds();
  service.stop();
  result.stats = service.stats();
  result.throughput =
      result.seconds > 0.0
          ? static_cast<double>(result.stats.requests) / result.seconds
          : 0.0;
  return result;
}

}  // namespace

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  bench::StatsJsonWriter record("service_load", config);
  config.print(std::cout);
  const int tenants = env_int("RRPLACE_TENANTS", 6);
  const int workers = env_int("RRPLACE_SERVE_WORKERS", 4);
  const int requests_per_tenant = env_int("RRPLACE_STEPS", 250);

  const auto region = bench::make_eval_region(config.seed, config.modules);
  const auto fabric = region->fabric_ptr();
  model::ModuleGenerator generator(bench::paper_workload_params(),
                                   config.seed);
  const auto library = generator.generate_many(config.modules);

  std::vector<std::vector<Request>> scripts;
  scripts.reserve(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t)
    scripts.push_back(tenant_script(t, config.seed, requests_per_tenant,
                                    static_cast<int>(library.size()),
                                    fabric->width(), fabric->height()));

  RunningStats cached_rps, uncached_rps, speedup;
  RunningStats cached_p50, cached_p99, uncached_p99, hit_rate, batched;
  long mismatches = 0;
  for (int run = 0; run < config.runs; ++run) {
    // Uncached arm first so the cached arm can't inherit anything warm.
    const ArmResult uncached =
        run_arm(fabric, library, scripts, workers, false);
    const ArmResult cached = run_arm(fabric, library, scripts, workers, true);
    cached_rps.add(cached.throughput);
    uncached_rps.add(uncached.throughput);
    if (uncached.throughput > 0.0)
      speedup.add(cached.throughput / uncached.throughput);
    cached_p50.add(cached.stats.latency_p50_ms);
    cached_p99.add(cached.stats.latency_p99_ms);
    uncached_p99.add(uncached.stats.latency_p99_ms);
    hit_rate.add(cached.stats.cache.hit_rate());
    batched.add(cached.stats.requests > 0
                    ? static_cast<double>(cached.stats.batched_requests) /
                          static_cast<double>(cached.stats.requests)
                    : 0.0);
    // Determinism gate: cached tables must be bit-identical to freshly
    // scanned ones, so the two arms must answer every request identically.
    for (int t = 0; t < tenants; ++t) {
      const auto& a = cached.responses[static_cast<std::size_t>(t)];
      const auto& b = uncached.responses[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i] != b[i]) ++mismatches;
    }
  }

  const std::uint64_t total_requests =
      static_cast<std::uint64_t>(tenants) *
      static_cast<std::uint64_t>(requests_per_tenant);
  TextTable table({"Arm", "Throughput (req/s)", "p50 (ms)", "p99 (ms)"});
  table.add_row({"context cache", TextTable::num(cached_rps.mean(), 1),
                 TextTable::num(cached_p50.mean(), 3),
                 TextTable::num(cached_p99.mean(), 3)});
  table.add_row({"anchor scan per request",
                 TextTable::num(uncached_rps.mean(), 1), "-",
                 TextTable::num(uncached_p99.mean(), 3)});
  table.print(std::cout, "Service load: " + std::to_string(tenants) +
                             " tenants x " +
                             std::to_string(requests_per_tenant) +
                             " requests on " + std::to_string(workers) +
                             " workers");
  std::cout << "cache speedup: " << TextTable::num(speedup.mean(), 2)
            << "x  hit rate: " << TextTable::pct(hit_rate.mean())
            << "  batched: " << TextTable::pct(batched.mean())
            << "  mismatches: " << mismatches << '\n';

  record.add_result("requests", json::Value(total_requests));
  record.add_result("tenants", json::Value(tenants));
  record.add_result("workers", json::Value(workers));
  record.add_result("throughput_rps", cached_rps);
  record.add_result("throughput_rps_uncached", uncached_rps);
  record.add_result("cache_speedup", speedup);
  record.add_result("cache_hit_rate", hit_rate);
  record.add_result("latency_p50_ms", cached_p50);
  record.add_result("latency_p99_ms", cached_p99);
  record.add_result("latency_p99_ms_uncached", uncached_p99);
  record.add_result("batched_fraction", batched);
  record.add_result("mismatches", json::Value(mismatches));
  return 0;
}
