// Service load: multi-tenant placement-as-a-service throughput and the
// solve-context cache's effect on it.
//
// Identical per-tenant churn scripts (place/remove with occasional
// transient faults and scrub repairs) are pumped through the in-process
// PlacementService three times by one submitter thread per tenant:
//   - cache + MER index     the production path (solve-context cache and
//                           free-space-indexed admission)
//   - cache + bitmap sweep  cache on, free_space_index off — isolates the
//                           admission path
//   - anchor scan           no cache: every request pays table preparation
// All tenants run the same fabric and library, so the cached arms prepare
// the healthy-fabric tables once and every return to the healthy
// signature after a repair is a hit; each novel faulted signature is a
// miss by design (acquisitions only happen at startup and on fault
// events, so the hit *rate* sits well below 1 while the hot healthy entry
// is never rebuilt).
//
// Expected shape: the cached arms sustain well over 1.5x the uncached
// throughput with a lower p99 (the scan leaves the request path), the
// healthy-signature acquisitions all hit, and the per-tenant responses of
// all three arms are
// bit-identical (mismatches = 0) — cached tables equal freshly scanned
// ones and index admission equals the sweep, the two invariants that make
// the fast path safe. The submit-to-completion latency is additionally
// split into in-placer service time and queue wait (total = service +
// queue per request), so index wins show up in the service component
// rather than being buried under queueing noise.
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "util/rng.hpp"

namespace {

using rr::service::Request;
using rr::service::RequestOp;
using rr::service::Response;

/// Deterministic churn script for one tenant. Fault events are rare enough
/// that throughput measures placement, common enough that both arms pay
/// context refreshes and displacement recovery. The live cap keeps each
/// tenant hovering near saturation: admissions stay hard (frequent
/// rejects, fragmented free space), which is both the regime an online
/// placement service actually degrades in and the one where the admission
/// path — MER index vs bitmap sweep — dominates the request cost.
std::vector<Request> tenant_script(int tenant, std::uint64_t seed,
                                   int requests, int library_size,
                                   int fabric_width, int fabric_height) {
  rr::Rng rng(seed ^ (0x5EC1CE00ULL + static_cast<std::uint64_t>(tenant)));
  constexpr std::size_t kLiveCap = 55;
  std::vector<Request> script;
  script.reserve(static_cast<std::size_t>(requests));
  std::vector<int> live;
  int next_instance = 0;
  bool fault_live = false;
  for (int i = 0; i < requests; ++i) {
    Request request;
    request.tenant = tenant;
    // Rare enough (<1% of requests) that the p99 latency measures the
    // admission path, not the fault-refresh path — a fault re-keys the
    // solve context and rebuilds the free-space index, a cost both arms
    // pay but that would otherwise own the top-1% tail.
    if (rng.chance(0.008)) {
      request.op = RequestOp::kFault;
      if (fault_live && rng.chance(0.5)) {
        request.fault.op = rr::fpga::FaultEvent::Op::kRepairTransient;
        fault_live = false;
      } else {
        request.fault.op = rr::fpga::FaultEvent::Op::kTile;
        request.fault.kind = rr::fpga::FaultKind::kTransient;
        request.fault.rect =
            rr::Rect{rng.uniform_int(0, fabric_width - 1),
                     rng.uniform_int(0, fabric_height - 1), 1, 1};
        fault_live = true;
      }
    } else if (!live.empty() && (live.size() >= kLiveCap || rng.chance(0.3))) {
      request.op = RequestOp::kRemove;
      const std::size_t pick = rng.pick_index(live);
      request.instance = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      request.op = RequestOp::kPlace;
      request.instance = next_instance++;
      request.module = rng.uniform_int(0, library_size - 1);
      live.push_back(request.instance);
    }
    script.push_back(request);
  }
  return script;
}

struct ArmResult {
  rr::service::ServiceStats stats;
  double seconds = 0.0;
  double throughput = 0.0;
  std::vector<std::vector<Response>> responses;  // per tenant, in order
};

/// Run every script through one service instance, one submitter thread per
/// tenant, and collect the ordered per-tenant responses.
ArmResult run_arm(const std::shared_ptr<const rr::fpga::Fabric>& fabric,
                  const std::vector<rr::model::Module>& library,
                  const std::vector<std::vector<Request>>& scripts,
                  int workers, bool cache_enabled,
                  bool free_space_index = true) {
  const int tenants = static_cast<int>(scripts.size());
  std::vector<rr::service::Tenant::Config> configs;
  configs.reserve(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    rr::service::Tenant::Config config;
    config.fabric = fabric;
    config.library = library;
    config.online.free_space_index = free_space_index;
    configs.push_back(std::move(config));
  }
  rr::service::ServiceOptions options;
  options.workers = workers;
  rr::service::PlacementService service(std::move(configs), options,
                                        cache_enabled);

  ArmResult result;
  result.responses.resize(static_cast<std::size_t>(tenants));
  rr::Stopwatch watch;
  {
    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<std::size_t>(tenants));
    for (int t = 0; t < tenants; ++t) {
      submitters.emplace_back([&, t] {
        const auto& script = scripts[static_cast<std::size_t>(t)];
        std::vector<std::future<Response>> futures;
        futures.reserve(script.size());
        for (const Request& request : script)
          futures.push_back(service.submit(request));
        auto& out = result.responses[static_cast<std::size_t>(t)];
        out.reserve(futures.size());
        for (auto& future : futures) out.push_back(future.get());
      });
    }
    for (std::thread& thread : submitters) thread.join();
  }
  result.seconds = watch.seconds();
  service.stop();
  result.stats = service.stats();
  result.throughput =
      result.seconds > 0.0
          ? static_cast<double>(result.stats.requests) / result.seconds
          : 0.0;
  return result;
}

}  // namespace

int main() {
  using namespace rr;
  const bench::EvalConfig config = bench::EvalConfig::from_env();
  bench::StatsJsonWriter record("service_load", config);
  config.print(std::cout);
  const int tenants = env_int("RRPLACE_TENANTS", 6);
  const int workers = env_int("RRPLACE_SERVE_WORKERS", 4);
  const int requests_per_tenant = env_int("RRPLACE_STEPS", 250);

  const auto region = bench::make_eval_region(config.seed, config.modules);
  const auto fabric = region->fabric_ptr();
  model::ModuleGenerator generator(bench::paper_workload_params(),
                                   config.seed);
  const auto library = generator.generate_many(config.modules);

  std::vector<std::vector<Request>> scripts;
  scripts.reserve(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t)
    scripts.push_back(tenant_script(t, config.seed, requests_per_tenant,
                                    static_cast<int>(library.size()),
                                    fabric->width(), fabric->height()));

  RunningStats cached_rps, uncached_rps, sweep_rps, speedup, index_speedup;
  RunningStats cached_p50, cached_p99, uncached_p99, sweep_p99;
  RunningStats service_p99, queue_p99, sweep_service_p99, service_speedup;
  RunningStats hit_rate, batched;
  long mismatches = 0;
  for (int run = 0; run < config.runs; ++run) {
    // Uncached arm first so the cached arm can't inherit anything warm.
    const ArmResult uncached =
        run_arm(fabric, library, scripts, workers, false);
    // Sweep arm: context cache on, free-space index off — isolates the
    // admission path from the table-preparation cost.
    const ArmResult sweep =
        run_arm(fabric, library, scripts, workers, true, false);
    const ArmResult cached = run_arm(fabric, library, scripts, workers, true);
    cached_rps.add(cached.throughput);
    uncached_rps.add(uncached.throughput);
    sweep_rps.add(sweep.throughput);
    if (uncached.throughput > 0.0)
      speedup.add(cached.throughput / uncached.throughput);
    if (sweep.throughput > 0.0)
      index_speedup.add(cached.throughput / sweep.throughput);
    cached_p50.add(cached.stats.latency_p50_ms);
    cached_p99.add(cached.stats.latency_p99_ms);
    uncached_p99.add(uncached.stats.latency_p99_ms);
    sweep_p99.add(sweep.stats.latency_p99_ms);
    service_p99.add(cached.stats.latency_service_p99_ms);
    queue_p99.add(cached.stats.latency_queue_p99_ms);
    sweep_service_p99.add(sweep.stats.latency_service_p99_ms);
    // The index win shows in the service component: total latency is
    // dominated by queue wait under the submit-everything-up-front load,
    // which amplifies scheduler noise far beyond the admission cost.
    if (cached.stats.latency_service_p99_ms > 0.0)
      service_speedup.add(sweep.stats.latency_service_p99_ms /
                          cached.stats.latency_service_p99_ms);
    hit_rate.add(cached.stats.cache.hit_rate());
    batched.add(cached.stats.requests > 0
                    ? static_cast<double>(cached.stats.batched_requests) /
                          static_cast<double>(cached.stats.requests)
                    : 0.0);
    // Determinism gate: cached tables equal freshly scanned ones, and index
    // admission equals the bitmap sweep, so all three arms must answer
    // every request identically.
    for (int t = 0; t < tenants; ++t) {
      const auto& a = cached.responses[static_cast<std::size_t>(t)];
      const auto& b = uncached.responses[static_cast<std::size_t>(t)];
      const auto& c = sweep.responses[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) ++mismatches;
        if (a[i] != c[i]) ++mismatches;
      }
    }
  }

  const std::uint64_t total_requests =
      static_cast<std::uint64_t>(tenants) *
      static_cast<std::uint64_t>(requests_per_tenant);
  TextTable table({"Arm", "Throughput (req/s)", "p50 (ms)", "p99 (ms)"});
  table.add_row({"cache + MER index", TextTable::num(cached_rps.mean(), 1),
                 TextTable::num(cached_p50.mean(), 3),
                 TextTable::num(cached_p99.mean(), 3)});
  table.add_row({"cache + bitmap sweep", TextTable::num(sweep_rps.mean(), 1),
                 "-", TextTable::num(sweep_p99.mean(), 3)});
  table.add_row({"anchor scan per request",
                 TextTable::num(uncached_rps.mean(), 1), "-",
                 TextTable::num(uncached_p99.mean(), 3)});
  table.print(std::cout, "Service load: " + std::to_string(tenants) +
                             " tenants x " +
                             std::to_string(requests_per_tenant) +
                             " requests on " + std::to_string(workers) +
                             " workers");
  std::cout << "cache speedup: " << TextTable::num(speedup.mean(), 2)
            << "x  index speedup: " << TextTable::num(index_speedup.mean(), 2)
            << "x  hit rate: " << TextTable::pct(hit_rate.mean())
            << "  batched: " << TextTable::pct(batched.mean()) << '\n';
  std::cout << "p99 split (index arm): service "
            << TextTable::num(service_p99.mean(), 3) << "ms, queue "
            << TextTable::num(queue_p99.mean(), 3)
            << "ms  service p99 vs sweep: "
            << TextTable::num(sweep_service_p99.mean(), 3) << "ms ("
            << TextTable::num(service_speedup.mean(), 2)
            << "x)  mismatches: " << mismatches << '\n';

  record.add_result("requests", json::Value(total_requests));
  record.add_result("tenants", json::Value(tenants));
  record.add_result("workers", json::Value(workers));
  record.add_result("throughput_rps", cached_rps);
  record.add_result("throughput_rps_uncached", uncached_rps);
  record.add_result("throughput_rps_sweep", sweep_rps);
  record.add_result("cache_speedup", speedup);
  record.add_result("index_speedup", index_speedup);
  record.add_result("cache_hit_rate", hit_rate);
  record.add_result("latency_p50_ms", cached_p50);
  record.add_result("latency_p99_ms", cached_p99);
  record.add_result("latency_p99_ms_uncached", uncached_p99);
  record.add_result("latency_p99_ms_sweep", sweep_p99);
  record.add_result("latency_service_p99_ms", service_p99);
  record.add_result("latency_queue_p99_ms", queue_p99);
  record.add_result("latency_service_p99_ms_sweep", sweep_service_p99);
  record.add_result("service_p99_speedup", service_speedup);
  record.add_result("batched_fraction", batched);
  record.add_result("mismatches", json::Value(mismatches));
  return 0;
}
