// M1 — google-benchmark microbenchmarks of the solver primitives: domain
// mutation, bitmatrix correlation, anchor computation, non-overlap
// propagation and a full small placement solve.
#include <benchmark/benchmark.h>

#include "rrplace.hpp"
#include "util/rng.hpp"

namespace {

using namespace rr;

void BM_DomainRemoveValues(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(7);
  std::vector<int> batch;
  for (long i = 0; i < n / 4; ++i)
    batch.push_back(rng.uniform_int(0, static_cast<int>(n - 1)));
  std::sort(batch.begin(), batch.end());
  batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
  for (auto _ : state) {
    cp::Domain d(0, static_cast<int>(n - 1));
    benchmark::DoNotOptimize(d.remove_values_sorted(batch));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DomainRemoveValues)->Arg(256)->Arg(4096)->Arg(65536);

void BM_DomainIntersect(benchmark::State& state) {
  const long n = state.range(0);
  cp::Domain even = [&] {
    std::vector<int> v;
    for (long i = 0; i < n; i += 2) v.push_back(static_cast<int>(i));
    return cp::Domain::from_values(std::move(v));
  }();
  for (auto _ : state) {
    cp::Domain d(0, static_cast<int>(n - 1));
    benchmark::DoNotOptimize(d.intersect(even));
  }
}
BENCHMARK(BM_DomainIntersect)->Arg(1024)->Arg(16384);

void BM_DomainKeepMasked(benchmark::State& state) {
  const long n = state.range(0);
  const std::size_t words = static_cast<std::size_t>((n + 63) / 64);
  std::vector<std::uint64_t> mask(words, 0xAAAAAAAAAAAAAAAAULL);
  for (auto _ : state) {
    cp::Domain d(0, static_cast<int>(n - 1));
    benchmark::DoNotOptimize(d.keep_masked(0, mask));
    // Second call hits the word-block representation.
    benchmark::DoNotOptimize(d.keep_masked(0, mask));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DomainKeepMasked)->Arg(256)->Arg(4096)->Arg(65536);

/// One re-propagation of a positive table constraint after removing a
/// value from the middle variable. range(1) selects the engine: 0 =
/// scanning oracle, 1 = compact-table.
void BM_TablePropagation(benchmark::State& state) {
  const int tuples_n = static_cast<int>(state.range(0));
  const bool compact = state.range(1) != 0;
  constexpr int kArity = 3;
  constexpr int kDomainSize = 64;
  Rng rng(11);
  std::vector<std::vector<int>> tuples;
  for (int t = 0; t < tuples_n; ++t) {
    std::vector<int> tuple(kArity);
    for (int i = 0; i < kArity; ++i)
      tuple[i] = rng.uniform_int(0, kDomainSize - 1);
    tuples.push_back(std::move(tuple));
  }
  for (auto _ : state) {
    state.PauseTiming();
    cp::Space space;
    std::vector<cp::VarId> vars;
    for (int i = 0; i < kArity; ++i)
      vars.push_back(space.new_var(0, kDomainSize - 1));
    cp::post_table(space, vars, tuples, cp::TableOptions{compact});
    space.propagate();
    space.push();
    space.remove(vars[1], kDomainSize / 2);
    state.ResumeTiming();
    benchmark::DoNotOptimize(space.propagate());
    state.PauseTiming();
    space.pop();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * tuples_n);
}
BENCHMARK(BM_TablePropagation)
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({4096, 0})
    ->Args({4096, 1});

/// One re-propagation of an element constraint after a B&B-style cut on
/// the result variable. range(1): 0 = scanning oracle, 1 = compact-table.
void BM_ElementPropagation(benchmark::State& state) {
  const int table_n = static_cast<int>(state.range(0));
  const bool compact = state.range(1) != 0;
  Rng rng(13);
  std::vector<int> table(static_cast<std::size_t>(table_n));
  for (int& v : table) v = rng.uniform_int(4, 40);
  for (auto _ : state) {
    state.PauseTiming();
    cp::Space space;
    const cp::VarId index = space.new_var(0, table_n - 1);
    const cp::VarId result = space.new_var(0, 64);
    cp::post_element(space, table, index, result,
                     cp::ElementOptions{compact});
    space.propagate();
    space.push();
    space.set_max(result, 20);  // the objective cut
    state.ResumeTiming();
    benchmark::DoNotOptimize(space.propagate());
    state.PauseTiming();
    space.pop();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * table_n);
}
BENCHMARK(BM_ElementPropagation)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({16384, 0})
    ->Args({16384, 1});

void BM_BitMatrixIntersects(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  BitMatrix grid(dim, dim);
  Rng rng(3);
  for (int i = 0; i < dim * dim / 8; ++i)
    grid.set(rng.uniform_int(0, dim - 1), rng.uniform_int(0, dim - 1), true);
  BitMatrix shape(8, 8, true);
  int r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid.intersects_shifted(shape, r % (dim - 8), (r * 7) % (dim - 8)));
    ++r;
  }
}
BENCHMARK(BM_BitMatrixIntersects)->Arg(32)->Arg(128);

void BM_AnchorComputation(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  fpga::ColumnarSpec spec;
  spec.bram_period = 12;
  spec.bram_offset = 5;
  auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_columnar(width, 28, spec));
  const fpga::PartialRegion region(fabric);
  const auto shape =
      model::ModuleGenerator::make_column_shape(40, 2, 2, 8, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geost::compute_valid_anchors(region.masks(), shape));
  }
}
BENCHMARK(BM_AnchorComputation)->Arg(60)->Arg(160);

void BM_PrepareTables(benchmark::State& state) {
  const int modules_n = static_cast<int>(state.range(0));
  fpga::IrregularSpec spec;
  spec.base.bram_period = 12;
  spec.base.bram_offset = 5;
  auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_irregular(modules_n * 5, 28, spec, 1));
  const fpga::PartialRegion region(fabric);
  model::GeneratorParams params;
  params.max_width = 11;
  params.bram_blocks_max = 2;  // keeps every module placeable on this fabric
  model::ModuleGenerator generator(params, 1);
  const auto modules = generator.generate_many(modules_n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(placer::prepare_tables(region, modules, true));
  }
}
BENCHMARK(BM_PrepareTables)->Arg(8)->Arg(24);

void BM_NonOverlapPropagation(benchmark::State& state) {
  // One propagation pass after an assignment, on a mid-size model.
  fpga::IrregularSpec spec;
  spec.base.bram_period = 12;
  spec.base.bram_offset = 5;
  auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_irregular(80, 28, spec, 1));
  const fpga::PartialRegion region(fabric);
  model::GeneratorParams params;
  params.max_width = 11;
  params.bram_blocks_max = 2;
  model::ModuleGenerator generator(params, 2);
  const auto modules = generator.generate_many(10);
  const auto tables = placer::prepare_tables(region, modules, true);
  for (auto _ : state) {
    state.PauseTiming();
    placer::BuiltModel model =
        placer::build_model_from_tables(region, tables);
    model.space->propagate();
    model.space->push();
    model.space->assign(model.placement_vars[0], 0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(model.space->propagate());
  }
}
BENCHMARK(BM_NonOverlapPropagation);

void BM_SmallPlacementSolve(benchmark::State& state) {
  auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_homogeneous(20, 8));
  const fpga::PartialRegion region(fabric);
  model::GeneratorParams params;
  params.clb_min = 6;
  params.clb_max = 16;
  params.bram_blocks_max = 0;
  params.max_height = 6;
  model::ModuleGenerator generator(params, 5);
  const auto modules = generator.generate_many(6);
  for (auto _ : state) {
    placer::PlacerOptions options;
    options.mode = placer::PlacerMode::kBranchAndBound;
    options.time_limit_seconds = 5.0;
    benchmark::DoNotOptimize(
        placer::Placer(region, modules, options).place());
  }
}
BENCHMARK(BM_SmallPlacementSolve)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
