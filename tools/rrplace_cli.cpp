// rrplace command-line tool — the "interactive tool" use the paper's
// conclusion targets: place a module library on a fabric description and
// print/emit the floorplan.
//
//   rrplace_cli --fabric F.fdf --modules M.mlf [options]
//
// Options:
//   --no-alternatives         place base layouts only
//   --time-limit <seconds>    solver budget (default 5)
//   --mode bnb|lns|auto|restarts
//                             search mode (default auto)
//   --workers <n>             portfolio width (default 1)
//   --no-incremental          from-scratch geost kernel (oracle engine)
//   --no-compact-element      scanning element propagator (oracle engine)
//   --seed <n>                random seed (default 1)
//   --svg <path>              also write an SVG floorplan
//   --stats-json <path>       write solver statistics (rrplace-stats-v1
//                             JSON: per-propagator-kind counters, search
//                             stats, placer metrics); "-" for stdout
//   --anchors <module>        print the valid-anchor mask of a module's
//                             base shape instead of solving (Fig. 4b view)
//   --online-trace <path>     replay an online place/remove trace through
//                             the OnlinePlacer instead of solving offline;
//                             lines: "place <id> <module>", "remove <id>",
//                             "#" comments
//   --defrag <seconds>        per-request defragmentation deadline for
//                             --online-trace or --soak (0 = off, plain
//                             first-fit)
//   --online-policy <p>       anchor-selection policy for the online placer
//                             (firstfit | bestfit | bottomleft | commcost;
//                             default firstfit); applies to --online-trace
//                             and --serve-trace; commcost requires --nets
//   --no-free-space-index     answer online admission with the occupancy-
//                             bitmap sweep instead of the incremental
//                             maximal-empty-rectangle index (the
//                             differential oracle; decisions identical)
//   --faults <path>           apply a fault trace's (.fft) resulting fault
//                             map to the region before solving or replaying:
//                             every placer refuses the faulty tiles
//   --fault-trace <path>      availability replay: place the modules
//                             offline, admit them into the fault-recovery
//                             manager, then feed the .fft events through
//                             tiered recovery (swap / re-place / defrag)
//   --fault-deadline <s>      per-event recovery deadline for --fault-trace
//                             (default 0.1; 0 = unlimited)
//   --serve-trace <path>      replay a multi-tenant request trace through
//                             the in-process placement service (every
//                             tenant gets its own copy of the fabric);
//                             lines: "tenants <n>",
//                             "place <tenant> <id> <module>",
//                             "remove <tenant> <id>",
//                             "fault <tenant> tile <x> <y> [kind]" (also
//                             column/rect in the .fft grammar),
//                             "repair <tenant> <x> <y>",
//                             "repair-transient <tenant>", "#" comments
//   --serve-workers <n>       service worker pool width (default 4);
//                             also applies to --soak
//   --serve-queue <n>         per-worker queue capacity (default 256);
//                             also applies to --soak
//   --soak <n>                soak mode: generate an adversarial workload of
//                             n requests (src/sim: MMPP bursts, heavy-tailed
//                             sizes/lifetimes, fault storms), replay it
//                             through the placement service, and audit
//                             end-state invariants at every epoch boundary
//                             (accounting identity, no leaked tiles,
//                             instance conservation, no placements on faulty
//                             tiles); any violation exits nonzero
//   --soak-tenants <n>        tenants in the generated workload (default 4)
//   --soak-epoch <n>          requests per epoch between invariant audits
//                             (default 2000)
//   --soak-quota <n>          per-tenant inflight quota; submits over it are
//                             shed with kShedQuota (0 = unlimited)
//   --soak-deadline-ms <x>    priority-class deadline base for generated
//                             place requests; class k gets base * 4^k ms and
//                             requests whose queue wait consumes the budget
//                             are shed (0 = no deadlines)
//   --soak-retry <n>          submit retry budget on a full shard queue
//                             (negative = block forever; default -1)
//   --soak-floor <f>          minimum per-tenant completed fraction audited
//                             at the end of the horizon (0 = off)
//   --gen-trace <path>        with --soak: write the generated trace text
//                             (serve-trace grammar) and exit without
//                             replaying; "-" for stdout
//   --no-serve-cache          disable the shared solve-context cache
//                             (every request pays the full anchor scan)
//   --serve-cache-cap <n>     solve-context cache LRU capacity (default
//                             32; 0 = unbounded)
//   --nets <path>             inter-module communication nets (.net): the
//                             offline placer adds a weighted-HPWL term to
//                             its objective, the online commcost policy
//                             ranks anchors by it, and fault recovery
//                             prefers spots near net partners
//   --comm-weight <w>         weight of the communication term relative to
//                             the area objective (default 1; 0 disables the
//                             term — the zero-weight oracle); requires
//                             --nets
//   --bus-period <p>          overlay horizontal bus lanes every p rows on
//                             the loaded fabric (comm/bus model)
//   --bus-offset <r>          first bus lane row (default 0); requires
//                             --bus-period
//   --bus-attach <row>        rewrite every module so logic in this shape
//                             row becomes bus-macro demand (modules then
//                             anchor on lanes); requires --bus-period; a
//                             row outside any shape is a model error
//   --quiet                   suppress the ASCII floorplan / trace log
//
// The trace modes are mutually exclusive, and flags that only make sense
// for one mode are rejected with the others (see check_conflicts).
#include <charconv>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>

#include "rrplace.hpp"

namespace {

struct CliOptions {
  std::string fabric_path;
  std::string modules_path;
  bool alternatives = true;
  double time_limit = 5.0;
  rr::placer::PlacerMode mode = rr::placer::PlacerMode::kAuto;
  int workers = 1;
  bool incremental = true;
  bool compact_element = true;
  std::uint64_t seed = 1;
  std::string svg_path;
  std::string stats_json_path;
  std::string anchors_module;
  std::string online_trace_path;
  double defrag_seconds = 0.0;
  rr::AnchorPolicy online_policy = rr::AnchorPolicy::kFirstFit;
  bool free_space_index = true;
  std::string faults_path;
  std::string fault_trace_path;
  double fault_deadline = 0.1;
  std::string serve_trace_path;
  int serve_workers = 4;
  std::size_t serve_queue = 256;
  bool serve_cache = true;
  std::size_t serve_cache_cap = rr::service::SolveContextCache::kDefaultCapacity;
  long soak_requests = 0;  // > 0 selects soak mode
  int soak_tenants = 4;
  long soak_epoch = 2000;
  int soak_quota = 0;
  double soak_deadline_ms = 0.0;
  int soak_retry = -1;
  double soak_floor = 0.0;
  std::string gen_trace_path;
  std::string nets_path;
  long comm_weight = 1;
  int bus_period = 0;
  int bus_offset = 0;
  int bus_attach = 0;
  bool quiet = false;
  // Which flags appeared explicitly — conflict checks must catch an
  // explicit "--mode restarts" with --serve-trace even though kAuto is
  // also the default, so defaults alone can't tell.
  bool mode_set = false;
  bool defrag_set = false;
  bool serve_tuning_set = false;
  bool soak_tuning_set = false;
  bool online_policy_set = false;
  bool free_space_index_set = false;
  bool comm_weight_set = false;
  bool bus_offset_set = false;
  bool bus_attach_set = false;
};

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: rrplace_cli --fabric F.fdf --modules M.mlf [options]\n"
      "  --no-alternatives, --time-limit S, --mode bnb|lns|auto|restarts,\n"
      "  --workers N, --no-incremental, --no-compact-element, --seed N,\n"
      "  --svg PATH,\n"
      "  --stats-json PATH|-, --anchors MODULE,\n"
      "  --online-trace PATH, --defrag S,\n"
      "  --online-policy firstfit|bestfit|bottomleft, --no-free-space-index,\n"
      "  --faults PATH, --fault-trace PATH, --fault-deadline S,\n"
      "  --serve-trace PATH, --serve-workers N, --serve-queue N,\n"
      "  --no-serve-cache, --serve-cache-cap N,\n"
      "  --soak N, --soak-tenants N, --soak-epoch N, --soak-quota N,\n"
      "  --soak-deadline-ms X, --soak-retry N, --soak-floor F,\n"
      "  --gen-trace PATH,\n"
      "  --nets PATH, --comm-weight W,\n"
      "  --bus-period P, --bus-offset R, --bus-attach ROW, --quiet\n";
  std::exit(error == nullptr ? 0 : 2);
}

const char* policy_name(rr::AnchorPolicy policy) {
  switch (policy) {
    case rr::AnchorPolicy::kFirstFit: return "firstfit";
    case rr::AnchorPolicy::kBestFit: return "bestfit";
    case rr::AnchorPolicy::kBottomLeft: return "bottomleft";
    case rr::AnchorPolicy::kCommCost: return "commcost";
  }
  return "firstfit";
}

// Conflicting-flag rejection: one line on stderr, nonzero exit, no usage
// dump — the combination is well-formed syntax, just meaningless, and the
// caller (likely a script) wants the reason, not the flag list.
[[noreturn]] void conflict(const std::string& what) {
  std::cerr << "error: conflicting options: " << what << '\n';
  std::exit(2);
}

// The three trace modes are mutually exclusive with each other and with
// --anchors, and mode-specific tuning flags are rejected outside their
// mode instead of being silently ignored.
void check_conflicts(const CliOptions& options) {
  const bool online = !options.online_trace_path.empty();
  const bool fault = !options.fault_trace_path.empty();
  const bool serve = !options.serve_trace_path.empty();
  const bool soak = options.soak_requests > 0;
  const bool anchors = !options.anchors_module.empty();
  if (online && fault) conflict("--online-trace with --fault-trace");
  if (serve && online) conflict("--serve-trace with --online-trace");
  if (serve && fault) conflict("--serve-trace with --fault-trace");
  if (soak && (online || fault || serve))
    conflict("--soak with another trace replay mode");
  if (anchors && (online || fault || serve || soak))
    conflict("--anchors with a trace replay mode");
  // The service runs the online first-fit placer per tenant; the offline
  // search mode can't apply, so an explicit --mode is a confused command
  // line even when it names the default.
  if ((serve || soak) && options.mode_set)
    conflict("--serve-trace/--soak with --mode");
  // Tenants own private fabrics built from the pristine description;
  // pre-damage via --faults would be silently dropped.
  if ((serve || soak) && !options.faults_path.empty())
    conflict("--serve-trace/--soak with --faults (pre-damage is per-tenant: "
             "use fault events in the trace)");
  if (options.defrag_set && !online && !soak)
    conflict("--defrag without --online-trace or --soak");
  // The policy and index toggles steer the OnlinePlacer, which only runs
  // inside the trace modes that host it.
  if (options.online_policy_set && !online && !serve && !soak)
    conflict("--online-policy without a trace replay mode");
  if (options.free_space_index_set && !online && !serve && !soak)
    conflict("--no-free-space-index without a trace replay mode");
  if (options.serve_tuning_set && !serve && !soak)
    conflict("--serve-workers/--serve-queue/--no-serve-cache/"
             "--serve-cache-cap without --serve-trace or --soak");
  if (options.soak_tuning_set && !soak)
    conflict("--soak-* or --gen-trace without --soak");
  // The communication term needs nets to price; a bare weight (or a
  // commcost policy with nothing to rank by) is a confused command line.
  if (options.comm_weight_set && options.nets_path.empty())
    conflict("--comm-weight without --nets");
  if (options.online_policy == rr::AnchorPolicy::kCommCost &&
      options.nets_path.empty())
    conflict("--online-policy commcost without --nets");
  // The bus overlay flags modify the lanes --bus-period creates; without a
  // period there are no lanes to offset or attach to.
  if (options.bus_offset_set && options.bus_period <= 0)
    conflict("--bus-offset without --bus-period");
  if (options.bus_attach_set && options.bus_period <= 0)
    conflict("--bus-attach without --bus-period");
}

// Checked numeric parsing: the whole token must parse and satisfy the
// bound, otherwise the program exits through usage() instead of silently
// running with a garbage (atoi/atof would yield 0) value.
template <typename T>
T parse_number(const char* text, const char* what, T min_value) {
  T value{};
  const char* const end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, value);
  if (ec != std::errc() || ptr != end)
    usage((std::string(what) + ": invalid number '" + text + "'").c_str());
  if (value < min_value)
    usage((std::string(what) + ": value " + text + " is below the minimum")
              .c_str());
  return value;
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions options;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fabric") options.fabric_path = need_value(i);
    else if (arg == "--modules") options.modules_path = need_value(i);
    else if (arg == "--no-alternatives") options.alternatives = false;
    else if (arg == "--no-incremental") options.incremental = false;
    else if (arg == "--no-compact-element") options.compact_element = false;
    else if (arg == "--time-limit")
      options.time_limit =
          parse_number<double>(need_value(i), "--time-limit", 0.0);
    else if (arg == "--workers")
      options.workers = parse_number<int>(need_value(i), "--workers", 1);
    else if (arg == "--seed")
      options.seed = parse_number<std::uint64_t>(need_value(i), "--seed", 0);
    else if (arg == "--svg") options.svg_path = need_value(i);
    else if (arg == "--stats-json") options.stats_json_path = need_value(i);
    else if (arg == "--anchors") options.anchors_module = need_value(i);
    else if (arg == "--online-trace") options.online_trace_path = need_value(i);
    else if (arg == "--defrag") {
      options.defrag_seconds =
          parse_number<double>(need_value(i), "--defrag", 0.0);
      options.defrag_set = true;
    }
    else if (arg == "--faults") options.faults_path = need_value(i);
    else if (arg == "--fault-trace") options.fault_trace_path = need_value(i);
    else if (arg == "--fault-deadline")
      options.fault_deadline =
          parse_number<double>(need_value(i), "--fault-deadline", 0.0);
    else if (arg == "--serve-trace") options.serve_trace_path = need_value(i);
    else if (arg == "--serve-workers") {
      options.serve_workers =
          parse_number<int>(need_value(i), "--serve-workers", 1);
      options.serve_tuning_set = true;
    }
    else if (arg == "--serve-queue") {
      options.serve_queue = parse_number<std::size_t>(
          need_value(i), "--serve-queue", std::size_t{1});
      options.serve_tuning_set = true;
    }
    else if (arg == "--no-serve-cache") {
      options.serve_cache = false;
      options.serve_tuning_set = true;
    }
    else if (arg == "--serve-cache-cap") {
      options.serve_cache_cap = parse_number<std::size_t>(
          need_value(i), "--serve-cache-cap", std::size_t{0});
      options.serve_tuning_set = true;
    }
    else if (arg == "--soak")
      options.soak_requests = parse_number<long>(need_value(i), "--soak", 1L);
    else if (arg == "--soak-tenants") {
      options.soak_tenants =
          parse_number<int>(need_value(i), "--soak-tenants", 1);
      options.soak_tuning_set = true;
    }
    else if (arg == "--soak-epoch") {
      options.soak_epoch = parse_number<long>(need_value(i), "--soak-epoch", 1L);
      options.soak_tuning_set = true;
    }
    else if (arg == "--soak-quota") {
      options.soak_quota = parse_number<int>(need_value(i), "--soak-quota", 0);
      options.soak_tuning_set = true;
    }
    else if (arg == "--soak-deadline-ms") {
      options.soak_deadline_ms =
          parse_number<double>(need_value(i), "--soak-deadline-ms", 0.0);
      options.soak_tuning_set = true;
    }
    else if (arg == "--soak-retry") {
      options.soak_retry =
          parse_number<int>(need_value(i), "--soak-retry", -1);
      options.soak_tuning_set = true;
    }
    else if (arg == "--soak-floor") {
      options.soak_floor =
          parse_number<double>(need_value(i), "--soak-floor", 0.0);
      options.soak_tuning_set = true;
    }
    else if (arg == "--gen-trace") {
      options.gen_trace_path = need_value(i);
      options.soak_tuning_set = true;
    }
    else if (arg == "--online-policy") {
      options.online_policy_set = true;
      const std::string policy = need_value(i);
      if (policy == "firstfit") options.online_policy = rr::AnchorPolicy::kFirstFit;
      else if (policy == "bestfit") options.online_policy = rr::AnchorPolicy::kBestFit;
      else if (policy == "bottomleft")
        options.online_policy = rr::AnchorPolicy::kBottomLeft;
      else if (policy == "commcost")
        options.online_policy = rr::AnchorPolicy::kCommCost;
      else usage("unknown online policy");
    }
    else if (arg == "--nets") options.nets_path = need_value(i);
    else if (arg == "--comm-weight") {
      options.comm_weight =
          parse_number<long>(need_value(i), "--comm-weight", 0L);
      options.comm_weight_set = true;
    }
    else if (arg == "--bus-period")
      options.bus_period = parse_number<int>(need_value(i), "--bus-period", 1);
    else if (arg == "--bus-offset") {
      options.bus_offset = parse_number<int>(need_value(i), "--bus-offset", 0);
      options.bus_offset_set = true;
    }
    else if (arg == "--bus-attach") {
      options.bus_attach = parse_number<int>(need_value(i), "--bus-attach", 0);
      options.bus_attach_set = true;
    }
    else if (arg == "--no-free-space-index") {
      options.free_space_index = false;
      options.free_space_index_set = true;
    }
    else if (arg == "--quiet") options.quiet = true;
    else if (arg == "--mode") {
      options.mode_set = true;
      const std::string mode = need_value(i);
      if (mode == "bnb") options.mode = rr::placer::PlacerMode::kBranchAndBound;
      else if (mode == "lns") options.mode = rr::placer::PlacerMode::kLns;
      else if (mode == "auto") options.mode = rr::placer::PlacerMode::kAuto;
      else if (mode == "restarts")
        options.mode = rr::placer::PlacerMode::kRestarts;
      else usage("unknown mode");
    } else if (arg == "--help" || arg == "-h") usage();
    else usage(("unknown option: " + arg).c_str());
  }
  if (options.fabric_path.empty() || options.modules_path.empty())
    usage("--fabric and --modules are required");
  check_conflicts(options);
  return options;
}

// The optional "comm" stats section: net count, active weight, and the
// total doubled-HPWL of the final placement (0 when nothing is placed).
rr::json::Value comm_stats_json(const rr::comm::NetList& nets, long weight,
                                long wirelength2) {
  rr::json::Value doc = rr::json::Value::object();
  doc.set("nets", rr::json::Value(static_cast<std::uint64_t>(nets.nets.size())));
  doc.set("weight", rr::json::Value(weight));
  doc.set("wirelength2", rr::json::Value(wirelength2));
  return doc;
}

// Replay an online place/remove trace through the OnlinePlacer and report
// the service level (acceptance ratio) plus defragmentation telemetry.
int run_online_trace(const CliOptions& cli,
                     const rr::fpga::PartialRegion& region,
                     const std::vector<rr::model::Module>& modules,
                     const std::shared_ptr<const rr::comm::NetList>& nets) {
  std::ifstream in(cli.online_trace_path);
  if (!in) {
    std::cerr << "error: cannot read trace " << cli.online_trace_path << '\n';
    return 2;
  }
  auto find_module = [&](const std::string& name) -> const rr::model::Module* {
    for (const auto& m : modules)
      if (m.name() == name) return &m;
    return nullptr;
  };
  auto trace_error = [&](long line_no, const std::string& what) {
    std::cerr << "error: " << cli.online_trace_path << ':' << line_no << ": "
              << what << '\n';
    return 2;
  };

  rr::baseline::OnlineOptions online;
  online.use_alternatives = cli.alternatives;
  online.policy = cli.online_policy;
  online.free_space_index = cli.free_space_index;
  online.defrag.deadline_seconds = cli.defrag_seconds;
  online.defrag.seed = cli.seed;
  online.nets = nets;
  online.comm_weight = cli.comm_weight;
  rr::baseline::OnlinePlacer placer(region, online);
  // Names of the live instances (defrag may relocate them, so positions
  // come from live_placements() at the end, not from this map).
  std::unordered_map<int, const rr::model::Module*> live_modules;

  std::ostream& human = cli.stats_json_path == "-" ? std::cerr : std::cout;
  rr::Stopwatch watch;
  long line_no = 0, places = 0, removes = 0, accepted = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string op;
    if (!(tokens >> op) || op.front() == '#') continue;
    if (op == "place") {
      int id = 0;
      std::string name;
      if (!(tokens >> id >> name))
        return trace_error(line_no, "expected: place <id> <module>");
      if (placer.is_placed(id))
        return trace_error(line_no,
                           "instance " + std::to_string(id) + " already live");
      const rr::model::Module* module = find_module(name);
      if (module == nullptr)
        return trace_error(line_no, "no module named '" + name + "'");
      ++places;
      const auto placement = placer.place(id, *module);
      if (placement) {
        ++accepted;
        live_modules[id] = module;
      }
      if (!cli.quiet) {
        human << "  place " << id << ' ' << name << ": ";
        if (placement) {
          human << "accepted shape=" << placement->shape << " at ("
                << placement->x << ',' << placement->y << ")\n";
        } else {
          human << "rejected\n";
        }
      }
    } else if (op == "remove") {
      int id = 0;
      if (!(tokens >> id)) return trace_error(line_no, "expected: remove <id>");
      if (!placer.is_placed(id))
        return trace_error(line_no,
                           "instance " + std::to_string(id) + " is not live");
      ++removes;
      placer.remove(id);
      live_modules.erase(id);
      if (!cli.quiet) human << "  remove " << id << '\n';
    } else {
      return trace_error(line_no, "unknown trace op '" + op + "'");
    }
  }
  const double seconds = watch.seconds();
  const long rejected = places - accepted;
  const auto& defrag = placer.defrag_stats();
  const auto& relocation = placer.relocation_cost();

  human << "trace: " << (places + removes) << " events (" << places
        << " place, " << removes << " remove)  accepted: " << accepted << '/'
        << places << " ("
        << rr::TextTable::pct(places > 0
                                  ? static_cast<double>(accepted) / places
                                  : 1.0)
        << ")\n";
  human << "defrag: deadline " << cli.defrag_seconds << "s, "
        << defrag.attempts << " passes, " << defrag.successes
        << " admitted (" << defrag.exact_successes << " exact, "
        << defrag.greedy_successes << " greedy), " << defrag.relocated_modules
        << " modules / " << defrag.relocated_tiles << " tiles relocated\n";
  // Final live wirelength under the loaded nets (names from the replay
  // map, positions from the placer: defrag may have relocated instances).
  long final_wirelength2 = 0;
  if (nets != nullptr) {
    std::vector<rr::comm::NamedPin> pins;
    pins.reserve(live_modules.size());
    for (const auto& p : placer.live_placements()) {
      const rr::model::Module* module = live_modules.at(p.module);
      const rr::Rect box =
          module->shapes()[static_cast<std::size_t>(p.shape)].bounding_box();
      pins.push_back(rr::comm::NamedPin{module->name(),
                                        rr::comm::center2(box, p.x, p.y)});
    }
    final_wirelength2 = rr::comm::pins_wirelength2(*nets, pins);
    human << "comm: " << nets->nets.size() << " nets, weight "
          << cli.comm_weight << ", final wirelength2 " << final_wirelength2
          << '\n';
  }
  human << "final: " << placer.live_count() << " live, occupancy "
        << rr::TextTable::pct(placer.occupancy()) << "  time: "
        << rr::TextTable::num(seconds, 3) << "s\n";

  if (!cli.stats_json_path.empty()) {
    rr::json::Value config = rr::json::Value::object();
    config.set("fabric", rr::json::Value(cli.fabric_path));
    config.set("modules", rr::json::Value(cli.modules_path));
    config.set("alternatives", rr::json::Value(cli.alternatives));
    config.set("trace", rr::json::Value(cli.online_trace_path));
    config.set("defrag_deadline_seconds",
               rr::json::Value(cli.defrag_seconds));
    config.set("seed", rr::json::Value(cli.seed));
    config.set("policy", rr::json::Value(policy_name(cli.online_policy)));
    config.set("free_space_index", rr::json::Value(cli.free_space_index));
    if (!cli.nets_path.empty())
      config.set("nets", rr::json::Value(cli.nets_path));
    // The search/space/result sections describe one offline solve; a trace
    // replay has none, so a default (empty) outcome keeps the schema
    // intact and the replay data lives in the "online" section.
    rr::placer::PlacementOutcome outcome;
    outcome.seconds = seconds;
    rr::json::Value stats = rr::placer::solve_stats_json(
        region, modules, outcome, "rrplace_cli-online", std::move(config));
    rr::json::Value online_doc = rr::json::Value::object();
    online_doc.set("places", rr::json::Value(places));
    online_doc.set("removes", rr::json::Value(removes));
    online_doc.set("accepted", rr::json::Value(accepted));
    online_doc.set("rejected", rr::json::Value(rejected));
    online_doc.set(
        "acceptance_ratio",
        rr::json::Value(places > 0 ? static_cast<double>(accepted) / places
                                   : 1.0));
    rr::json::Value defrag_doc = rr::json::Value::object();
    defrag_doc.set("attempts", rr::json::Value(defrag.attempts));
    defrag_doc.set("successes", rr::json::Value(defrag.successes));
    defrag_doc.set("exact_successes", rr::json::Value(defrag.exact_successes));
    defrag_doc.set("greedy_successes",
                   rr::json::Value(defrag.greedy_successes));
    defrag_doc.set("relocated_modules",
                   rr::json::Value(defrag.relocated_modules));
    defrag_doc.set("relocated_tiles", rr::json::Value(defrag.relocated_tiles));
    defrag_doc.set("deadline_expiries",
                   rr::json::Value(defrag.deadline_expiries));
    defrag_doc.set("rejects", rr::json::Value(defrag.rejects));
    defrag_doc.set("retry_skips", rr::json::Value(defrag.retry_skips));
    defrag_doc.set("budget_skips", rr::json::Value(defrag.budget_skips));
    online_doc.set("defrag", std::move(defrag_doc));
    rr::json::Value relocation_doc = rr::json::Value::object();
    relocation_doc.set("tiles_cleared",
                       rr::json::Value(relocation.tiles_cleared));
    relocation_doc.set("tiles_written",
                       rr::json::Value(relocation.tiles_written));
    relocation_doc.set("modules_moved",
                       rr::json::Value(relocation.modules_loaded));
    online_doc.set("relocation", std::move(relocation_doc));
    online_doc.set("final_live", rr::json::Value(placer.live_count()));
    online_doc.set("final_occupancy", rr::json::Value(placer.occupancy()));
    stats.set("online", std::move(online_doc));
    if (nets != nullptr)
      stats.set("comm", comm_stats_json(*nets, cli.comm_weight,
                                        final_wirelength2));
    if (cli.stats_json_path == "-") {
      std::cout << stats.dump(2) << '\n';
    } else {
      std::ofstream out(cli.stats_json_path);
      if (!out) {
        std::cerr << "error: cannot write " << cli.stats_json_path << '\n';
        return 2;
      }
      out << stats.dump(2) << '\n';
    }
  }
  return 0;
}

// Describe a fault event in one log token, e.g. "column 7 permanent".
std::string fault_event_text(const rr::fpga::FaultEvent& event) {
  using Op = rr::fpga::FaultEvent::Op;
  const char* kind = event.kind == rr::fpga::FaultKind::kPermanent
                         ? "permanent"
                         : "transient";
  std::ostringstream out;
  switch (event.op) {
    case Op::kTile:
      out << "tile " << event.rect.x << ',' << event.rect.y << ' ' << kind;
      break;
    case Op::kColumn:
      out << "column " << event.rect.x << ' ' << kind;
      break;
    case Op::kRect:
      out << "rect " << event.rect.x << ',' << event.rect.y << '+'
          << event.rect.width << 'x' << event.rect.height << ' ' << kind;
      break;
    case Op::kRepairTile:
      out << "repair " << event.rect.x << ',' << event.rect.y;
      break;
    case Op::kRepairTransient:
      out << "repair-transient";
      break;
  }
  return out.str();
}

// Availability replay: offline placement, admit into the recovery manager,
// then degrade the fabric event by event and report what survived.
int run_fault_trace(const CliOptions& cli,
                    const rr::fpga::PartialRegion& region,
                    const std::vector<rr::model::Module>& modules,
                    const std::shared_ptr<const rr::comm::NetList>& nets) {
  const rr::fpga::FaultTrace trace =
      rr::fpga::load_fault_trace(cli.fault_trace_path);
  if (trace.width != region.fabric().width() ||
      trace.height != region.fabric().height()) {
    std::cerr << "error: fault trace is " << trace.width << 'x' << trace.height
              << " but the fabric is " << region.fabric().width() << 'x'
              << region.fabric().height() << '\n';
    return 2;
  }

  rr::placer::PlacerOptions options;
  options.use_alternatives = cli.alternatives;
  options.time_limit_seconds = cli.time_limit;
  options.mode = cli.mode;
  options.workers = cli.workers;
  options.seed = cli.seed;
  options.nets = nets.get();
  options.comm_weight = cli.comm_weight;
  rr::placer::Placer placer(region, modules, options);
  const auto outcome = placer.place();
  std::ostream& human = cli.stats_json_path == "-" ? std::cerr : std::cout;
  if (!outcome.solution.feasible) {
    human << "infeasible: no initial placement to recover\n";
    return 1;
  }

  rr::runtime::FaultRecoveryOptions recovery_options;
  recovery_options.deadline_seconds = cli.fault_deadline;
  recovery_options.use_alternatives = cli.alternatives;
  recovery_options.seed = cli.seed;
  recovery_options.nets = nets;
  recovery_options.comm_weight = cli.comm_weight;
  rr::runtime::FaultRecoveryManager manager(region, recovery_options);
  for (const auto& p : outcome.solution.placements)
    manager.admit(p.module, modules[static_cast<std::size_t>(p.module)],
                  p.shape, p.x, p.y);
  const int admitted = manager.live_count();

  rr::Stopwatch watch;
  for (const rr::fpga::FaultEvent& event : trace.events) {
    const auto result = manager.on_fault(event);
    if (cli.quiet) continue;
    human << "  " << fault_event_text(event) << ": ";
    if (result.modules_hit == 0 && result.retry_recoveries == 0) {
      human << "no module hit";
    } else {
      human << result.modules_hit << " hit, " << result.recovered
            << " recovered, " << result.parked << " parked";
      if (result.retry_recoveries > 0)
        human << ", " << result.retry_recoveries << " revived";
    }
    human << "  (capacity "
          << rr::TextTable::pct(manager.capacity_retained()) << ", live "
          << manager.live_count() << ")\n";
  }
  const double seconds = watch.seconds();
  const auto& stats = manager.stats();
  const double recovered_fraction =
      stats.modules_hit > 0 ? static_cast<double>(stats.recovered) /
                                  static_cast<double>(stats.modules_hit)
                            : 1.0;

  human << "faults: " << stats.events << " events, " << stats.tiles_faulted
        << " tiles faulted, " << stats.modules_hit << " modules hit\n";
  human << "recovery: " << stats.recovered << '/' << stats.modules_hit
        << " in place (" << stats.inplace_swaps << " swap, "
        << stats.local_replaces << " local, " << stats.defrag_recoveries
        << " defrag, " << stats.greedy_recoveries << " greedy), "
        << stats.retry_recoveries << " revived, " << manager.parked_count()
        << " parked\n";
  human << "final: " << manager.live_count() << '/' << admitted
        << " live, capacity "
        << rr::TextTable::pct(manager.capacity_retained())
        << ", utilization " << rr::TextTable::pct(manager.utilization())
        << "  time: " << rr::TextTable::num(seconds, 3) << "s\n";

  if (!cli.stats_json_path.empty()) {
    rr::json::Value config = rr::json::Value::object();
    config.set("fabric", rr::json::Value(cli.fabric_path));
    config.set("modules", rr::json::Value(cli.modules_path));
    config.set("alternatives", rr::json::Value(cli.alternatives));
    config.set("fault_trace", rr::json::Value(cli.fault_trace_path));
    config.set("fault_deadline_seconds", rr::json::Value(cli.fault_deadline));
    config.set("seed", rr::json::Value(cli.seed));
    if (!cli.nets_path.empty())
      config.set("nets", rr::json::Value(cli.nets_path));
    rr::json::Value stats_doc = rr::placer::solve_stats_json(
        region, modules, outcome, "rrplace_cli-faults", std::move(config));
    rr::json::Value fault_doc = rr::json::Value::object();
    fault_doc.set("events", rr::json::Value(stats.events));
    fault_doc.set("tiles_faulted", rr::json::Value(stats.tiles_faulted));
    fault_doc.set("modules_hit", rr::json::Value(stats.modules_hit));
    fault_doc.set("recovered", rr::json::Value(stats.recovered));
    fault_doc.set("recovered_fraction", rr::json::Value(recovered_fraction));
    fault_doc.set("inplace_swaps", rr::json::Value(stats.inplace_swaps));
    fault_doc.set("local_replaces", rr::json::Value(stats.local_replaces));
    fault_doc.set("defrag_recoveries",
                  rr::json::Value(stats.defrag_recoveries));
    fault_doc.set("greedy_recoveries",
                  rr::json::Value(stats.greedy_recoveries));
    fault_doc.set("park_transitions", rr::json::Value(stats.parked));
    fault_doc.set("retries", rr::json::Value(stats.retries));
    fault_doc.set("retry_recoveries", rr::json::Value(stats.retry_recoveries));
    fault_doc.set("abandoned", rr::json::Value(stats.abandoned));
    fault_doc.set("deadline_expiries",
                  rr::json::Value(stats.deadline_expiries));
    fault_doc.set("relocated_modules",
                  rr::json::Value(stats.relocated_modules));
    fault_doc.set("relocated_tiles", rr::json::Value(stats.relocated_tiles));
    fault_doc.set("final_live", rr::json::Value(manager.live_count()));
    fault_doc.set("final_parked", rr::json::Value(manager.parked_count()));
    fault_doc.set("capacity_retained",
                  rr::json::Value(manager.capacity_retained()));
    fault_doc.set("utilization", rr::json::Value(manager.utilization()));
    rr::json::Value cost_doc = rr::json::Value::object();
    cost_doc.set("tiles_cleared",
                 rr::json::Value(manager.recovery_cost().tiles_cleared));
    cost_doc.set("tiles_written",
                 rr::json::Value(manager.recovery_cost().tiles_written));
    cost_doc.set("modules_loaded",
                 rr::json::Value(manager.recovery_cost().modules_loaded));
    fault_doc.set("recovery_cost", std::move(cost_doc));
    stats_doc.set("fault", std::move(fault_doc));
    if (nets != nullptr) {
      // Wirelength of what survived, at its possibly-relocated positions.
      std::vector<rr::comm::NamedPin> pins;
      for (const auto& p : manager.live_placements()) {
        const rr::model::Module& module = manager.module_of(p.module);
        const rr::Rect box =
            module.shapes()[static_cast<std::size_t>(p.shape)].bounding_box();
        pins.push_back(rr::comm::NamedPin{module.name(),
                                          rr::comm::center2(box, p.x, p.y)});
      }
      stats_doc.set("comm",
                    comm_stats_json(*nets, cli.comm_weight,
                                    rr::comm::pins_wirelength2(*nets, pins)));
    }
    if (cli.stats_json_path == "-") {
      std::cout << stats_doc.dump(2) << '\n';
    } else {
      std::ofstream out(cli.stats_json_path);
      if (!out) {
        std::cerr << "error: cannot write " << cli.stats_json_path << '\n';
        return 2;
      }
      out << stats_doc.dump(2) << '\n';
    }
  }
  return 0;
}

// One log token for the overload/lifecycle statuses; nullptr for outcomes
// of requests that actually executed.
const char* shed_text(rr::service::Response::Status status) {
  using Status = rr::service::Response::Status;
  switch (status) {
    case Status::kShedDeadline: return "shed(deadline)";
    case Status::kShedQuota: return "shed(quota)";
    case Status::kShedQueue: return "shed(queue)";
    case Status::kRejectedStopped: return "rejected(stopped)";
    default: return nullptr;
  }
}

// Multi-tenant service replay: parse the whole trace into a request list,
// pump it through the in-process PlacementService (one private fabric per
// tenant, shared solve-context cache), then report throughput, latency
// percentiles, and cache effectiveness.
int run_serve_trace(const CliOptions& cli,
                    const rr::fpga::PartialRegion& region,
                    const std::shared_ptr<const rr::fpga::Fabric>& fabric,
                    const std::vector<rr::model::Module>& modules,
                    const std::shared_ptr<const rr::comm::NetList>& nets) {
  std::ifstream in(cli.serve_trace_path);
  if (!in) {
    std::cerr << "error: cannot read trace " << cli.serve_trace_path << '\n';
    return 2;
  }
  // Shared grammar parser (src/service/trace.*) — the same one the workload
  // generator's output round-trips through. InvalidInput propagates to
  // main's catch (exit 2) with the "<path>:<line>: <what>" message.
  const rr::service::ServeTrace trace = rr::service::parse_serve_trace(
      in, cli.serve_trace_path, modules, fabric->width(), fabric->height());
  const int tenants = trace.tenants;
  const std::vector<rr::service::Request>& requests = trace.requests;

  std::vector<rr::service::Tenant::Config> configs;
  configs.reserve(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    rr::service::Tenant::Config config;
    config.fabric = fabric;
    config.library = modules;
    config.online.use_alternatives = cli.alternatives;
    config.online.policy = cli.online_policy;
    config.online.free_space_index = cli.free_space_index;
    config.online.nets = nets;
    config.online.comm_weight = cli.comm_weight;
    configs.push_back(std::move(config));
  }
  rr::service::ServiceOptions service_options;
  service_options.workers = cli.serve_workers;
  service_options.queue_capacity = cli.serve_queue;
  service_options.cache_capacity = cli.serve_cache_cap;
  rr::service::PlacementService service(std::move(configs), service_options,
                                        cli.serve_cache);

  rr::Stopwatch watch;
  std::vector<std::future<rr::service::Response>> futures;
  futures.reserve(requests.size());
  for (const auto& request : requests)
    futures.push_back(service.submit(request));
  std::vector<rr::service::Response> responses;
  responses.reserve(futures.size());
  for (auto& future : futures) responses.push_back(future.get());
  const double seconds = watch.seconds();
  service.stop();
  const rr::service::ServiceStats stats = service.stats();
  const double throughput =
      seconds > 0.0 ? static_cast<double>(requests.size()) / seconds : 0.0;

  std::ostream& human = cli.stats_json_path == "-" ? std::cerr : std::cout;
  if (!cli.quiet) {
    using Status = rr::service::Response::Status;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto& request = requests[i];
      const auto& response = responses[i];
      const char* shed = shed_text(response.status);
      human << "  [t" << request.tenant << "] ";
      switch (request.op) {
        case rr::service::RequestOp::kPlace:
          human << "place " << request.instance << ' '
                << modules[static_cast<std::size_t>(request.module)].name()
                << ": ";
          if (response.status == Status::kPlaced) {
            human << "accepted shape=" << response.placement.shape << " at ("
                  << response.placement.x << ',' << response.placement.y
                  << ")";
          } else if (response.status == Status::kRejected) {
            human << "rejected";
          }
          break;
        case rr::service::RequestOp::kRemove:
          human << "remove " << request.instance << ':';
          break;
        case rr::service::RequestOp::kFault:
          human << fault_event_text(request.fault) << ": ";
          if (shed == nullptr)
            human << response.displaced << " displaced, "
                  << response.recovered << " recovered";
          break;
      }
      if (response.status == Status::kError)
        human << "error: " << response.error;
      if (shed != nullptr) human << shed;
      human << '\n';
    }
  }

  human << "serve: " << stats.requests << " requests, " << tenants
        << " tenants on " << service.worker_count() << " workers  time: "
        << rr::TextTable::num(seconds, 3) << "s  throughput: "
        << rr::TextTable::num(throughput, 1) << " req/s\n";
  human << "status: " << stats.placed << " placed, " << stats.rejected
        << " rejected, " << stats.removed << " removed, "
        << stats.fault_events << " faults, " << stats.errors << " errors  "
        << "batching: " << stats.batches << " rounds, "
        << stats.batched_requests << " coalesced\n";
  if (stats.shed.total_shed() > 0) {
    human << "shed: " << stats.shed.shed_deadline << " deadline, "
          << stats.shed.shed_quota << " quota, " << stats.shed.shed_queue
          << " queue, " << stats.shed.rejected_stopped << " stopped ("
          << rr::TextTable::pct(
                 static_cast<double>(stats.shed.total_shed()) /
                 static_cast<double>(stats.shed.submitted))
          << " of " << stats.shed.submitted << " submitted)\n";
  }
  if (cli.serve_cache) {
    human << "cache: " << stats.cache.hits << " hits / " << stats.cache.misses
          << " misses (" << rr::TextTable::pct(stats.cache.hit_rate())
          << "), " << stats.cache.invalidations << " invalidations, "
          << stats.cache.evictions << " evictions, " << stats.cache.entries
          << " entries (cap " << service.cache().capacity() << ")\n";
  } else {
    human << "cache: disabled\n";
  }
  human << "latency: p50 " << rr::TextTable::num(stats.latency_p50_ms, 3)
        << "ms, p99 " << rr::TextTable::num(stats.latency_p99_ms, 3)
        << "ms, max " << rr::TextTable::num(stats.latency_max_ms, 3)
        << "ms  (service p99 "
        << rr::TextTable::num(stats.latency_service_p99_ms, 3)
        << "ms, queue p99 "
        << rr::TextTable::num(stats.latency_queue_p99_ms, 3) << "ms)\n";

  if (!cli.stats_json_path.empty()) {
    rr::json::Value config = rr::json::Value::object();
    config.set("fabric", rr::json::Value(cli.fabric_path));
    config.set("modules", rr::json::Value(cli.modules_path));
    config.set("alternatives", rr::json::Value(cli.alternatives));
    config.set("trace", rr::json::Value(cli.serve_trace_path));
    config.set("workers", rr::json::Value(cli.serve_workers));
    config.set("queue_capacity",
               rr::json::Value(static_cast<std::uint64_t>(cli.serve_queue)));
    config.set("cache", rr::json::Value(cli.serve_cache));
    config.set("cache_capacity", rr::json::Value(static_cast<std::uint64_t>(
                                     cli.serve_cache_cap)));
    config.set("policy", rr::json::Value(policy_name(cli.online_policy)));
    config.set("free_space_index", rr::json::Value(cli.free_space_index));
    // As with the online replay, the solve sections describe one offline
    // solve which a service replay doesn't have; the replay data lives in
    // the "service" section.
    rr::placer::PlacementOutcome outcome;
    outcome.seconds = seconds;
    rr::json::Value stats_doc = rr::placer::solve_stats_json(
        region, modules, outcome, "rrplace_cli-service", std::move(config));
    rr::json::Value service_doc = stats.to_json();
    service_doc.set("tenants", rr::json::Value(tenants));
    service_doc.set("workers", rr::json::Value(service.worker_count()));
    service_doc.set("seconds", rr::json::Value(seconds));
    service_doc.set("throughput_rps", rr::json::Value(throughput));
    stats_doc.set("service", std::move(service_doc));
    if (cli.stats_json_path == "-") {
      std::cout << stats_doc.dump(2) << '\n';
    } else {
      std::ofstream out(cli.stats_json_path);
      if (!out) {
        std::cerr << "error: cannot write " << cli.stats_json_path << '\n';
        return 2;
      }
      out << stats_doc.dump(2) << '\n';
    }
  }
  return 0;
}

// Long-horizon soak: generate an adversarial workload (src/sim), replay it
// through the placement service epoch by epoch, and audit end-state
// invariants at every epoch boundary. An audit runs only after every
// submitted future has resolved, so the shed counters are exact (inflight
// is zero) and the workers are quiescent on every tenant — the
// tenant_quiesced() contract. Invariants:
//
//   - accounting: submitted == completed + shed + stopped, exactly, and
//     every counter equals the number of responses observed with the
//     matching status (monotone across epochs);
//   - no leaked tiles: per tenant, occupancy-bitmap popcount ==
//     occupied-tile counter == sum of live footprint areas;
//   - conservation: live instances == accepted places - removes - fault
//     losses (displaced minus recovered);
//   - no live placement overlaps a faulty tile;
//   - optionally (--soak-floor) every tenant completed at least the floor
//     fraction of its submitted requests, checked once at the end.
int run_soak(const CliOptions& cli, const rr::fpga::PartialRegion& region,
             const std::shared_ptr<const rr::fpga::Fabric>& fabric,
             const std::vector<rr::model::Module>& modules,
             const std::shared_ptr<const rr::comm::NetList>& nets) {
  rr::sim::WorkloadParams params;
  params.tenants = cli.soak_tenants;
  params.requests = cli.soak_requests;
  params.seed = cli.seed;
  params.deadline_base_ms = cli.soak_deadline_ms;
  rr::sim::WorkloadGenerator generator(params, modules, fabric->width(),
                                       fabric->height());
  const rr::service::ServeTrace trace = generator.generate();

  if (!cli.gen_trace_path.empty()) {
    const std::string text = rr::sim::WorkloadGenerator::render(trace, modules);
    if (cli.gen_trace_path == "-") {
      std::cout << text;
    } else {
      std::ofstream out(cli.gen_trace_path);
      if (!out) {
        std::cerr << "error: cannot write " << cli.gen_trace_path << '\n';
        return 2;
      }
      out << text;
    }
    return 0;
  }

  const int tenants = trace.tenants;
  std::vector<rr::service::Tenant::Config> configs;
  configs.reserve(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    rr::service::Tenant::Config config;
    config.fabric = fabric;
    config.library = modules;
    config.online.use_alternatives = cli.alternatives;
    config.online.policy = cli.online_policy;
    config.online.free_space_index = cli.free_space_index;
    config.online.defrag.deadline_seconds = cli.defrag_seconds;
    config.online.defrag.seed = cli.seed;
    config.online.nets = nets;
    config.online.comm_weight = cli.comm_weight;
    configs.push_back(std::move(config));
  }
  rr::service::ServiceOptions service_options;
  service_options.workers = cli.serve_workers;
  service_options.queue_capacity = cli.serve_queue;
  service_options.cache_capacity = cli.serve_cache_cap;
  service_options.tenant_inflight_quota = cli.soak_quota;
  service_options.submit_retry_budget = cli.soak_retry;
  rr::service::PlacementService service(std::move(configs), service_options,
                                        cli.serve_cache);

  using Status = rr::service::Response::Status;
  // Instance → library module, recorded at submit time regardless of the
  // admission outcome: the generator never reuses ids, so this resolves the
  // footprint of any instance the placer reports live.
  std::vector<std::unordered_map<int, int>> instance_module(
      static_cast<std::size_t>(tenants));
  std::vector<long> accepted(static_cast<std::size_t>(tenants), 0);
  std::vector<long> removed(static_cast<std::size_t>(tenants), 0);
  std::vector<long> lost(static_cast<std::size_t>(tenants), 0);
  std::vector<long> tenant_submitted(static_cast<std::size_t>(tenants), 0);
  std::vector<long> tenant_completed(static_cast<std::size_t>(tenants), 0);
  std::uint64_t observed_completed = 0, observed_deadline = 0,
                observed_quota = 0, observed_queue = 0, observed_stopped = 0;
  rr::service::ShedCounters previous{};
  long violations = 0;
  long epochs = 0;
  auto violate = [&](const std::string& what) {
    ++violations;
    std::cerr << "soak: INVARIANT VIOLATION (epoch " << epochs << "): " << what
              << '\n';
  };
  auto tenant_tag = [](int t) { return "tenant " + std::to_string(t); };

  rr::Stopwatch watch;
  std::size_t next = 0;
  std::vector<std::pair<std::size_t, std::future<rr::service::Response>>>
      inflight;
  while (next < trace.requests.size()) {
    const std::size_t end =
        std::min(trace.requests.size(),
                 next + static_cast<std::size_t>(cli.soak_epoch));
    inflight.clear();
    for (; next < end; ++next) {
      const rr::service::Request& request = trace.requests[next];
      const auto t = static_cast<std::size_t>(request.tenant);
      if (request.op == rr::service::RequestOp::kPlace)
        instance_module[t][request.instance] = request.module;
      ++tenant_submitted[t];
      inflight.emplace_back(next, service.submit(request));
    }
    for (auto& [index, future] : inflight) {
      const rr::service::Response response = future.get();
      const auto t = static_cast<std::size_t>(trace.requests[index].tenant);
      switch (response.status) {
        case Status::kPlaced:
          ++accepted[t];
          ++observed_completed;
          ++tenant_completed[t];
          break;
        case Status::kRemoved:
          ++removed[t];
          ++observed_completed;
          ++tenant_completed[t];
          break;
        case Status::kFaulted:
          lost[t] += response.displaced - response.recovered;
          ++observed_completed;
          ++tenant_completed[t];
          break;
        case Status::kRejected:
        case Status::kError:
          ++observed_completed;
          ++tenant_completed[t];
          break;
        case Status::kShedDeadline: ++observed_deadline; break;
        case Status::kShedQuota: ++observed_quota; break;
        case Status::kShedQueue: ++observed_queue; break;
        case Status::kRejectedStopped: ++observed_stopped; break;
      }
    }
    ++epochs;

    // --- Accounting audit.
    const rr::service::ShedCounters counters = service.shed_counters();
    if (counters.submitted != static_cast<std::uint64_t>(next))
      violate("submitted counter " + std::to_string(counters.submitted) +
              " != " + std::to_string(next) + " submit() calls");
    if (counters.submitted != counters.completed + counters.total_shed())
      violate("identity broken: submitted " +
              std::to_string(counters.submitted) + " != completed " +
              std::to_string(counters.completed) + " + shed " +
              std::to_string(counters.total_shed()));
    if (counters.completed != observed_completed ||
        counters.shed_deadline != observed_deadline ||
        counters.shed_quota != observed_quota ||
        counters.shed_queue != observed_queue ||
        counters.rejected_stopped != observed_stopped)
      violate("shed counters disagree with the observed response statuses");
    if (counters.completed < previous.completed ||
        counters.shed_deadline < previous.shed_deadline ||
        counters.shed_quota < previous.shed_quota ||
        counters.shed_queue < previous.shed_queue ||
        counters.rejected_stopped < previous.rejected_stopped ||
        counters.submit_retries < previous.submit_retries)
      violate("a shed counter went backwards");
    previous = counters;

    // --- Per-tenant state audit.
    for (int t = 0; t < tenants; ++t) {
      const auto ti = static_cast<std::size_t>(t);
      const rr::service::Tenant& tenant = service.tenant_quiesced(t);
      const rr::baseline::OnlinePlacer& placer = tenant.placer();
      const auto live = placer.live_placements();
      const long bitmap_tiles =
          static_cast<long>(placer.occupied_matrix().popcount());
      long footprint_tiles = 0;
      for (const auto& p : live) {
        const auto it = instance_module[ti].find(p.module);
        if (it == instance_module[ti].end()) {
          violate(tenant_tag(t) + ": live instance " +
                  std::to_string(p.module) + " the trace never placed");
          continue;
        }
        footprint_tiles +=
            modules[static_cast<std::size_t>(it->second)]
                .shapes()[static_cast<std::size_t>(p.shape)]
                .area();
      }
      if (bitmap_tiles != placer.occupied_tiles())
        violate(tenant_tag(t) + ": bitmap popcount " +
                std::to_string(bitmap_tiles) + " != occupied-tile counter " +
                std::to_string(placer.occupied_tiles()));
      if (footprint_tiles != placer.occupied_tiles())
        violate(tenant_tag(t) + ": leaked tiles: live footprints cover " +
                std::to_string(footprint_tiles) + " but " +
                std::to_string(placer.occupied_tiles()) + " are occupied");
      if (static_cast<long>(live.size()) != placer.live_count())
        violate(tenant_tag(t) + ": live_count " +
                std::to_string(placer.live_count()) + " != " +
                std::to_string(live.size()) + " live placements");
      if (placer.live_count() != accepted[ti] - removed[ti] - lost[ti])
        violate(tenant_tag(t) + ": conservation broken: " +
                std::to_string(placer.live_count()) + " live != " +
                std::to_string(accepted[ti]) + " accepted - " +
                std::to_string(removed[ti]) + " removed - " +
                std::to_string(lost[ti]) + " lost");
      if (placer.occupied_matrix().intersects_shifted(
              tenant.region().fault_mask(), 0, 0))
        violate(tenant_tag(t) + ": a live placement covers a faulty tile");
    }
  }
  const double seconds = watch.seconds();
  service.stop();
  const rr::service::ServiceStats stats = service.stats();
  const double throughput =
      seconds > 0.0 ? static_cast<double>(trace.requests.size()) / seconds
                    : 0.0;

  double min_fraction = 1.0;
  long total_live = 0, total_lost = 0;
  for (int t = 0; t < tenants; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    if (tenant_submitted[ti] > 0)
      min_fraction = std::min(
          min_fraction, static_cast<double>(tenant_completed[ti]) /
                            static_cast<double>(tenant_submitted[ti]));
    total_live += accepted[ti] - removed[ti] - lost[ti];
    total_lost += lost[ti];
  }
  if (cli.soak_floor > 0.0 && min_fraction < cli.soak_floor)
    violate("per-tenant completion floor: min fraction " +
            std::to_string(min_fraction) + " < " +
            std::to_string(cli.soak_floor));

  std::ostream& human = cli.stats_json_path == "-" ? std::cerr : std::cout;
  human << "soak: " << trace.requests.size() << " requests, " << tenants
        << " tenants on " << service.worker_count() << " workers, " << epochs
        << " epochs  time: " << rr::TextTable::num(seconds, 3)
        << "s  throughput: " << rr::TextTable::num(throughput, 1)
        << " req/s\n";
  human << "audit: " << violations << " violations  state: " << total_live
        << " live, " << total_lost << " lost to faults, min tenant "
        << "completion " << rr::TextTable::pct(min_fraction) << '\n';
  human << "shed: " << stats.shed.shed_deadline << " deadline, "
        << stats.shed.shed_quota << " quota, " << stats.shed.shed_queue
        << " queue, " << stats.shed.rejected_stopped << " stopped, "
        << stats.shed.submit_retries << " retries ("
        << rr::TextTable::pct(
               stats.shed.submitted > 0
                   ? static_cast<double>(stats.shed.total_shed()) /
                         static_cast<double>(stats.shed.submitted)
                   : 0.0)
        << " of " << stats.shed.submitted << " submitted)\n";
  human << "latency: p50 " << rr::TextTable::num(stats.latency_p50_ms, 3)
        << "ms, p99 " << rr::TextTable::num(stats.latency_p99_ms, 3)
        << "ms, max " << rr::TextTable::num(stats.latency_max_ms, 3)
        << "ms\n";

  if (!cli.stats_json_path.empty()) {
    rr::json::Value config = rr::json::Value::object();
    config.set("fabric", rr::json::Value(cli.fabric_path));
    config.set("modules", rr::json::Value(cli.modules_path));
    config.set("requests", rr::json::Value(cli.soak_requests));
    config.set("tenants", rr::json::Value(tenants));
    config.set("epoch", rr::json::Value(cli.soak_epoch));
    config.set("seed", rr::json::Value(cli.seed));
    config.set("quota", rr::json::Value(cli.soak_quota));
    config.set("deadline_base_ms", rr::json::Value(cli.soak_deadline_ms));
    config.set("retry_budget", rr::json::Value(cli.soak_retry));
    config.set("defrag_deadline_seconds", rr::json::Value(cli.defrag_seconds));
    rr::placer::PlacementOutcome outcome;
    outcome.seconds = seconds;
    rr::json::Value stats_doc = rr::placer::solve_stats_json(
        region, modules, outcome, "rrplace_cli-soak", std::move(config));
    rr::json::Value service_doc = stats.to_json();
    service_doc.set("tenants", rr::json::Value(tenants));
    service_doc.set("workers", rr::json::Value(service.worker_count()));
    service_doc.set("seconds", rr::json::Value(seconds));
    service_doc.set("throughput_rps", rr::json::Value(throughput));
    stats_doc.set("service", std::move(service_doc));
    rr::json::Value soak_doc = rr::json::Value::object();
    soak_doc.set("requests", rr::json::Value(
                                 static_cast<std::uint64_t>(
                                     trace.requests.size())));
    soak_doc.set("epochs", rr::json::Value(epochs));
    soak_doc.set("violations", rr::json::Value(violations));
    soak_doc.set("final_live", rr::json::Value(total_live));
    soak_doc.set("lost", rr::json::Value(total_lost));
    soak_doc.set("min_tenant_completed_fraction",
                 rr::json::Value(min_fraction));
    stats_doc.set("soak", std::move(soak_doc));
    if (cli.stats_json_path == "-") {
      std::cout << stats_doc.dump(2) << '\n';
    } else {
      std::ofstream out(cli.stats_json_path);
      if (!out) {
        std::cerr << "error: cannot write " << cli.stats_json_path << '\n';
        return 2;
      }
      out << stats_doc.dump(2) << '\n';
    }
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_args(argc, argv);
  try {
    rr::fpga::Fabric fabric_desc = rr::fpga::load_fdf(cli.fabric_path);
    if (cli.bus_period > 0) {
      rr::comm::BusSpec bus;
      bus.lane_period = cli.bus_period;
      bus.lane_offset = cli.bus_offset;
      fabric_desc = rr::comm::with_bus_lanes(fabric_desc, bus);
    }
    const auto fabric =
        std::make_shared<const rr::fpga::Fabric>(std::move(fabric_desc));
    rr::fpga::PartialRegion region(fabric);
    if (!cli.faults_path.empty()) {
      // Pre-existing damage: the resulting fault map masks the region's
      // availability, so the solve below places around the dead tiles.
      const auto trace = rr::fpga::load_fault_trace(cli.faults_path);
      if (trace.width != fabric->width() ||
          trace.height != fabric->height()) {
        std::cerr << "error: fault trace is " << trace.width << 'x'
                  << trace.height << " but the fabric is " << fabric->width()
                  << 'x' << fabric->height() << '\n';
        return 2;
      }
      region.apply_faults(rr::fpga::fault_map_from_trace(trace));
    }
    auto modules = rr::model::load_mlf(cli.modules_path);
    if (modules.empty()) {
      std::cerr << "error: module library is empty\n";
      return 2;
    }
    if (cli.bus_attach_set)
      // Throws ModelError (exit 2 below) when the row is outside a shape.
      modules = rr::comm::with_bus_attachment(modules, cli.bus_attach);
    std::shared_ptr<const rr::comm::NetList> nets;
    if (!cli.nets_path.empty())
      nets = std::make_shared<const rr::comm::NetList>(
          rr::comm::load_nets(cli.nets_path));

    if (!cli.anchors_module.empty()) {
      for (const auto& module : modules) {
        if (module.name() != cli.anchors_module) continue;
        std::cout << rr::render::anchor_mask_ascii(region,
                                                   module.shapes().front())
                  << rr::render::legend();
        return 0;
      }
      std::cerr << "error: no module named '" << cli.anchors_module << "'\n";
      return 2;
    }

    if (!cli.online_trace_path.empty()) {
      // Collection must be on before the replay so the "online.defrag.*"
      // counters reach the stats document's metrics section.
      if (!cli.stats_json_path.empty()) rr::metrics::set_enabled(true);
      return run_online_trace(cli, region, modules, nets);
    }

    if (!cli.fault_trace_path.empty()) {
      if (!cli.stats_json_path.empty()) rr::metrics::set_enabled(true);
      return run_fault_trace(cli, region, modules, nets);
    }

    if (!cli.serve_trace_path.empty()) {
      // Collection must be on before the service spawns its workers so the
      // per-worker metric shards (service.* counters) are recorded.
      if (!cli.stats_json_path.empty()) rr::metrics::set_enabled(true);
      return run_serve_trace(cli, region, fabric, modules, nets);
    }

    if (cli.soak_requests > 0) {
      if (!cli.stats_json_path.empty()) rr::metrics::set_enabled(true);
      return run_soak(cli, region, fabric, modules, nets);
    }

    rr::placer::PlacerOptions options;
    options.use_alternatives = cli.alternatives;
    options.time_limit_seconds = cli.time_limit;
    options.mode = cli.mode;
    options.workers = cli.workers;
    options.nonoverlap.incremental = cli.incremental;
    options.element.compact = cli.compact_element;
    options.seed = cli.seed;
    options.nets = nets.get();
    options.comm_weight = cli.comm_weight;
    // Collection must be on before the Placer builds its Spaces: each Space
    // snapshots the flag at construction.
    if (!cli.stats_json_path.empty()) rr::metrics::set_enabled(true);
    rr::placer::Placer placer(region, modules, options);
    const auto outcome = placer.place();

    if (!cli.stats_json_path.empty()) {
      rr::json::Value config = rr::json::Value::object();
      config.set("fabric", rr::json::Value(cli.fabric_path));
      config.set("modules", rr::json::Value(cli.modules_path));
      config.set("alternatives", rr::json::Value(cli.alternatives));
      config.set("time_limit", rr::json::Value(cli.time_limit));
      config.set("workers", rr::json::Value(cli.workers));
      config.set("incremental", rr::json::Value(cli.incremental));
      config.set("compact_element", rr::json::Value(cli.compact_element));
      config.set("seed", rr::json::Value(cli.seed));
      if (!cli.nets_path.empty())
        config.set("nets", rr::json::Value(cli.nets_path));
      rr::json::Value stats = rr::placer::solve_stats_json(
          region, modules, outcome, "rrplace_cli", std::move(config));
      if (nets != nullptr) {
        long wirelength2 = 0;
        if (outcome.solution.feasible) {
          const rr::comm::BoundNets bound(*nets, modules);
          std::vector<rr::comm::Center2> centers(modules.size());
          for (const auto& p : outcome.solution.placements) {
            const rr::Rect box = modules[static_cast<std::size_t>(p.module)]
                                     .shapes()[static_cast<std::size_t>(p.shape)]
                                     .bounding_box();
            centers[static_cast<std::size_t>(p.module)] =
                rr::comm::center2(box, p.x, p.y);
          }
          wirelength2 = bound.wirelength2(centers);
        }
        stats.set("comm",
                  comm_stats_json(*nets, cli.comm_weight, wirelength2));
      }
      if (cli.stats_json_path == "-") {
        std::cout << stats.dump(2) << '\n';
      } else {
        std::ofstream out(cli.stats_json_path);
        if (!out) {
          std::cerr << "error: cannot write " << cli.stats_json_path << '\n';
          return 2;
        }
        out << stats.dump(2) << '\n';
      }
    }

    // With --stats-json - the document owns stdout; the human-readable
    // report moves to stderr so the output stays machine-parseable.
    std::ostream& human =
        cli.stats_json_path == "-" ? std::cerr : std::cout;

    if (!outcome.solution.feasible) {
      human << "infeasible"
                << (outcome.optimal ? " (proven: no placement exists)" : "")
                << '\n';
      return 1;
    }
    const auto report = rr::placer::validate(region, modules, outcome.solution);
    if (!report.ok()) {
      std::cerr << "internal error: solution failed validation: "
                << report.errors.front() << '\n';
      return 3;
    }
    if (!cli.quiet) {
      human << rr::render::placement_ascii(region, modules,
                                               outcome.solution)
                << rr::render::legend();
    }
    human << "modules: " << modules.size()
              << "  extent: " << outcome.solution.extent
              << (outcome.optimal ? " (optimal)" : " (best found)")
              << "  utilization: "
              << rr::TextTable::pct(rr::placer::spanned_utilization(
                     region, modules, outcome.solution))
              << "  time: " << rr::TextTable::num(outcome.seconds, 3)
              << "s\n";
    for (const auto& p : outcome.solution.placements) {
      human << "  " << modules[static_cast<std::size_t>(p.module)].name()
                << " shape=" << p.shape << " at (" << p.x << "," << p.y
                << ")\n";
    }
    if (!cli.svg_path.empty()) {
      rr::render::save_placement_svg(cli.svg_path, region, modules,
                                     outcome.solution);
      human << "SVG written to " << cli.svg_path << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
