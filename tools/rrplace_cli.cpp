// rrplace command-line tool — the "interactive tool" use the paper's
// conclusion targets: place a module library on a fabric description and
// print/emit the floorplan.
//
//   rrplace_cli --fabric F.fdf --modules M.mlf [options]
//
// Options:
//   --no-alternatives         place base layouts only
//   --time-limit <seconds>    solver budget (default 5)
//   --mode bnb|lns|auto|restarts
//                             search mode (default auto)
//   --workers <n>             portfolio width (default 1)
//   --no-incremental          from-scratch geost kernel (oracle engine)
//   --no-compact-element      scanning element propagator (oracle engine)
//   --seed <n>                random seed (default 1)
//   --svg <path>              also write an SVG floorplan
//   --stats-json <path>       write solver statistics (rrplace-stats-v1
//                             JSON: per-propagator-kind counters, search
//                             stats, placer metrics); "-" for stdout
//   --anchors <module>        print the valid-anchor mask of a module's
//                             base shape instead of solving (Fig. 4b view)
//   --quiet                   suppress the ASCII floorplan
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "rrplace.hpp"

namespace {

struct CliOptions {
  std::string fabric_path;
  std::string modules_path;
  bool alternatives = true;
  double time_limit = 5.0;
  rr::placer::PlacerMode mode = rr::placer::PlacerMode::kAuto;
  int workers = 1;
  bool incremental = true;
  bool compact_element = true;
  std::uint64_t seed = 1;
  std::string svg_path;
  std::string stats_json_path;
  std::string anchors_module;
  bool quiet = false;
};

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: rrplace_cli --fabric F.fdf --modules M.mlf [options]\n"
      "  --no-alternatives, --time-limit S, --mode bnb|lns|auto|restarts,\n"
      "  --workers N, --no-incremental, --no-compact-element, --seed N,\n"
      "  --svg PATH,\n"
      "  --stats-json PATH|-, --anchors MODULE, --quiet\n";
  std::exit(error == nullptr ? 0 : 2);
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions options;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fabric") options.fabric_path = need_value(i);
    else if (arg == "--modules") options.modules_path = need_value(i);
    else if (arg == "--no-alternatives") options.alternatives = false;
    else if (arg == "--no-incremental") options.incremental = false;
    else if (arg == "--no-compact-element") options.compact_element = false;
    else if (arg == "--time-limit") options.time_limit = std::atof(need_value(i));
    else if (arg == "--workers") options.workers = std::atoi(need_value(i));
    else if (arg == "--seed")
      options.seed = std::strtoull(need_value(i), nullptr, 10);
    else if (arg == "--svg") options.svg_path = need_value(i);
    else if (arg == "--stats-json") options.stats_json_path = need_value(i);
    else if (arg == "--anchors") options.anchors_module = need_value(i);
    else if (arg == "--quiet") options.quiet = true;
    else if (arg == "--mode") {
      const std::string mode = need_value(i);
      if (mode == "bnb") options.mode = rr::placer::PlacerMode::kBranchAndBound;
      else if (mode == "lns") options.mode = rr::placer::PlacerMode::kLns;
      else if (mode == "auto") options.mode = rr::placer::PlacerMode::kAuto;
      else if (mode == "restarts")
        options.mode = rr::placer::PlacerMode::kRestarts;
      else usage("unknown mode");
    } else if (arg == "--help" || arg == "-h") usage();
    else usage(("unknown option: " + arg).c_str());
  }
  if (options.fabric_path.empty() || options.modules_path.empty())
    usage("--fabric and --modules are required");
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_args(argc, argv);
  try {
    const auto fabric = std::make_shared<const rr::fpga::Fabric>(
        rr::fpga::load_fdf(cli.fabric_path));
    const rr::fpga::PartialRegion region(fabric);
    const auto modules = rr::model::load_mlf(cli.modules_path);
    if (modules.empty()) {
      std::cerr << "error: module library is empty\n";
      return 2;
    }

    if (!cli.anchors_module.empty()) {
      for (const auto& module : modules) {
        if (module.name() != cli.anchors_module) continue;
        std::cout << rr::render::anchor_mask_ascii(region,
                                                   module.shapes().front())
                  << rr::render::legend();
        return 0;
      }
      std::cerr << "error: no module named '" << cli.anchors_module << "'\n";
      return 2;
    }

    rr::placer::PlacerOptions options;
    options.use_alternatives = cli.alternatives;
    options.time_limit_seconds = cli.time_limit;
    options.mode = cli.mode;
    options.workers = cli.workers;
    options.nonoverlap.incremental = cli.incremental;
    options.element.compact = cli.compact_element;
    options.seed = cli.seed;
    // Collection must be on before the Placer builds its Spaces: each Space
    // snapshots the flag at construction.
    if (!cli.stats_json_path.empty()) rr::metrics::set_enabled(true);
    rr::placer::Placer placer(region, modules, options);
    const auto outcome = placer.place();

    if (!cli.stats_json_path.empty()) {
      rr::json::Value config = rr::json::Value::object();
      config.set("fabric", rr::json::Value(cli.fabric_path));
      config.set("modules", rr::json::Value(cli.modules_path));
      config.set("alternatives", rr::json::Value(cli.alternatives));
      config.set("time_limit", rr::json::Value(cli.time_limit));
      config.set("workers", rr::json::Value(cli.workers));
      config.set("incremental", rr::json::Value(cli.incremental));
      config.set("compact_element", rr::json::Value(cli.compact_element));
      config.set("seed", rr::json::Value(cli.seed));
      const rr::json::Value stats = rr::placer::solve_stats_json(
          region, modules, outcome, "rrplace_cli", std::move(config));
      if (cli.stats_json_path == "-") {
        std::cout << stats.dump(2) << '\n';
      } else {
        std::ofstream out(cli.stats_json_path);
        if (!out) {
          std::cerr << "error: cannot write " << cli.stats_json_path << '\n';
          return 2;
        }
        out << stats.dump(2) << '\n';
      }
    }

    // With --stats-json - the document owns stdout; the human-readable
    // report moves to stderr so the output stays machine-parseable.
    std::ostream& human =
        cli.stats_json_path == "-" ? std::cerr : std::cout;

    if (!outcome.solution.feasible) {
      human << "infeasible"
                << (outcome.optimal ? " (proven: no placement exists)" : "")
                << '\n';
      return 1;
    }
    const auto report = rr::placer::validate(region, modules, outcome.solution);
    if (!report.ok()) {
      std::cerr << "internal error: solution failed validation: "
                << report.errors.front() << '\n';
      return 3;
    }
    if (!cli.quiet) {
      human << rr::render::placement_ascii(region, modules,
                                               outcome.solution)
                << rr::render::legend();
    }
    human << "modules: " << modules.size()
              << "  extent: " << outcome.solution.extent
              << (outcome.optimal ? " (optimal)" : " (best found)")
              << "  utilization: "
              << rr::TextTable::pct(rr::placer::spanned_utilization(
                     region, modules, outcome.solution))
              << "  time: " << rr::TextTable::num(outcome.seconds, 3)
              << "s\n";
    for (const auto& p : outcome.solution.placements) {
      human << "  " << modules[static_cast<std::size_t>(p.module)].name()
                << " shape=" << p.shape << " at (" << p.x << "," << p.y
                << ")\n";
    }
    if (!cli.svg_path.empty()) {
      rr::render::save_placement_svg(cli.svg_path, region, modules,
                                     outcome.solution);
      human << "SVG written to " << cli.svg_path << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
