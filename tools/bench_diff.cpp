// Benchmark trajectory gate — compare two rrplace-bench-v1 records.
//
//   bench_diff <baseline.json> <current.json> [--max-regression PCT]
//              --pin key[:higher|lower] [--pin ...]
//
// Each --pin names a dot-path under the record's "results" object (e.g.
// "element_speedup.mean" or just "element_speedup" — a {count,mean,min,max}
// summary resolves to its "mean") together with the direction that counts
// as better. The tool prints a comparison table and exits 1 when any pinned
// metric regressed by more than --max-regression percent (default 25).
//
// Pin ratio/count metrics (speedups, mismatch counts), not wall-clock
// times: CI machines vary widely in absolute speed, but "compact is N x
// faster than scanning on the same tree" is a machine-independent claim.
//
// A baseline of exactly 0 switches to an absolute check: for "lower" pins
// the current value must stay 0 (a mismatch count may never grow), for
// "higher" pins any value passes.
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using rr::json::Value;

struct Pin {
  std::string path;          // dot-path under "results"
  bool higher_is_better = true;
};

Value load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw rr::InvalidInput("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Value doc = rr::json::parse(buffer.str());
  if (!doc.is_object() || !doc.contains("schema") ||
      !doc.at("schema").is_string() ||
      doc.at("schema").as_string() != "rrplace-bench-v1")
    throw rr::InvalidInput(path + ": not an rrplace-bench-v1 record");
  return doc;
}

/// Resolve a dot-path under doc["results"]; a {count,mean,...} summary
/// object resolves to its "mean" so pins can name the metric directly.
double resolve(const Value& doc, const std::string& path,
               const std::string& file) {
  const Value* node = &doc.at("results");
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t dot = path.find('.', start);
    const std::string key =
        path.substr(start, dot == std::string::npos ? dot : dot - start);
    if (!node->is_object() || !node->contains(key))
      throw rr::InvalidInput(file + ": results." + path + " not found");
    node = &node->at(key);
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  if (node->is_object() && node->contains("mean"))
    node = &node->at("mean");
  if (!node->is_number())
    throw rr::InvalidInput(file + ": results." + path + " is not numeric");
  return node->as_number();
}

std::string fmt(double v) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3) << v;
  return out.str();
}

int run(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<Pin> pins;
  double max_regression_pct = 25.0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--max-regression") {
      if (++i >= argc)
        throw rr::InvalidInput("--max-regression needs a value");
      max_regression_pct = std::stod(argv[i]);
    } else if (arg == "--pin") {
      if (++i >= argc) throw rr::InvalidInput("--pin needs a value");
      Pin pin;
      std::string spec = argv[i];
      if (const std::size_t colon = spec.rfind(':');
          colon != std::string::npos) {
        const std::string dir = spec.substr(colon + 1);
        if (dir == "higher") {
          pin.higher_is_better = true;
        } else if (dir == "lower") {
          pin.higher_is_better = false;
        } else {
          throw rr::InvalidInput("pin direction must be higher|lower, got \"" +
                                 dir + "\"");
        }
        spec.resize(colon);
      }
      pin.path = std::move(spec);
      pins.push_back(std::move(pin));
    } else if (!arg.empty() && arg.front() == '-') {
      throw rr::InvalidInput("unknown flag \"" + std::string(arg) + "\"");
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.size() != 2 || pins.empty()) {
    std::cerr << "usage: bench_diff <baseline.json> <current.json> "
                 "[--max-regression PCT] --pin key[:higher|lower] [...]\n";
    return 2;
  }

  const Value baseline = load(files[0]);
  const Value current = load(files[1]);
  if (baseline.at("bench").as_string() != current.at("bench").as_string())
    throw rr::InvalidInput("bench name mismatch: " +
                           baseline.at("bench").as_string() + " vs " +
                           current.at("bench").as_string());

  std::cout << "bench: " << current.at("bench").as_string()
            << "  (max regression " << fmt(max_regression_pct) << "%)\n";
  int regressions = 0;
  for (const Pin& pin : pins) {
    const double base = resolve(baseline, pin.path, files[0]);
    const double cur = resolve(current, pin.path, files[1]);
    bool regressed;
    std::string change;
    if (base == 0.0) {
      // Absolute mode: a zero baseline (e.g. mismatches) must stay zero
      // when lower is better; anything passes when higher is better.
      regressed = !pin.higher_is_better && cur > 0.0;
      change = "abs";
    } else {
      const double pct = (cur / base - 1.0) * 100.0;
      const double signed_loss = pin.higher_is_better ? -pct : pct;
      regressed = signed_loss > max_regression_pct;
      change = (pct >= 0 ? "+" : "") + fmt(pct) + "%";
    }
    std::cout << "  " << pin.path << " ("
              << (pin.higher_is_better ? "higher" : "lower")
              << "): " << fmt(base) << " -> " << fmt(cur) << "  " << change
              << "  " << (regressed ? "REGRESSED" : "ok") << '\n';
    if (regressed) ++regressions;
  }
  if (regressions > 0) {
    std::cerr << regressions << " pinned metric(s) regressed beyond "
              << fmt(max_regression_pct) << "%\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << e.what() << '\n';
    return 2;
  }
}
