// Schema validator for observability output — the CI gate that keeps
// emitted statistics machine-readable.
//
//   check_stats_json <file.json> [...]
//
// Accepts two document families:
//   - rrplace-stats-v1 (rrplace_cli --stats-json, placer::solve_stats_json)
//   - rrplace-bench-v1 (bench harness records, bench_common.hpp)
// Exits 0 when every file parses and carries the documented keys; prints
// the first problem and exits 1 otherwise.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cp/types.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using rr::json::Value;

void require(bool ok, const std::string& what) {
  if (!ok) throw rr::InvalidInput(what);
}

void check_number(const Value& doc, const char* key) {
  require(doc.contains(key) && doc.at(key).is_number(),
          std::string("missing numeric key \"") + key + "\"");
}

void check_search(const Value& search) {
  for (const char* key :
       {"nodes", "fails", "solutions", "max_depth", "restarts"})
    check_number(search, key);
  require(search.contains("complete") && search.at("complete").is_bool(),
          "search.complete must be a bool");
}

void check_propagators(const Value& kinds) {
  require(kinds.is_object(), "\"propagators\" must be an object");
  for (int k = 0; k < rr::cp::kNumPropKinds; ++k) {
    const char* name =
        rr::cp::prop_kind_name(static_cast<rr::cp::PropKind>(k));
    require(kinds.contains(name),
            std::string("propagators missing kind \"") + name + "\"");
    const Value& bucket = kinds.at(name);
    for (const char* key : {"runs", "failures", "prunings", "seconds"})
      check_number(bucket, key);
  }
}

void check_stats_v1(const Value& doc) {
  require(doc.contains("tool") && doc.at("tool").is_string(),
          "missing string key \"tool\"");
  check_search(doc.at("search"));
  const Value& space = doc.at("space");
  check_number(space, "propagations");
  check_number(space, "domain_changes");
  check_propagators(doc.at("propagators"));
  require(doc.at("incumbents").is_array(), "\"incumbents\" must be an array");
  const Value& result = doc.at("result");
  require(result.at("feasible").is_bool(), "result.feasible must be a bool");
  for (const char* key : {"extent", "seconds", "utilization"})
    check_number(result, key);
  const Value& metrics = doc.at("metrics");
  require(metrics.at("counters").is_object(),
          "metrics.counters must be an object");
  require(metrics.at("timers").is_object(),
          "metrics.timers must be an object");
  // The fault section is optional (rrplace_cli --fault-trace only), but
  // when present it must carry the availability-replay contract.
  if (doc.contains("fault")) {
    const Value& fault = doc.at("fault");
    require(fault.is_object(), "\"fault\" must be an object");
    for (const char* key :
         {"events", "tiles_faulted", "modules_hit", "recovered",
          "recovered_fraction", "inplace_swaps", "local_replaces",
          "defrag_recoveries", "greedy_recoveries", "park_transitions",
          "retries", "retry_recoveries", "abandoned", "deadline_expiries",
          "relocated_modules", "relocated_tiles", "final_live",
          "final_parked", "capacity_retained", "utilization"})
      check_number(fault, key);
    const Value& cost = fault.at("recovery_cost");
    for (const char* key : {"tiles_cleared", "tiles_written",
                            "modules_loaded"})
      check_number(cost, key);
  }
  // The comm section is optional (rrplace_cli --nets only), but when
  // present it must carry the communication-model contract.
  if (doc.contains("comm")) {
    const Value& comm = doc.at("comm");
    require(comm.is_object(), "\"comm\" must be an object");
    for (const char* key : {"nets", "weight", "wirelength2"})
      check_number(comm, key);
  }
  // The service section is optional (rrplace_cli --serve-trace only), but
  // when present it must carry the multi-tenant replay contract.
  if (doc.contains("service")) {
    const Value& service = doc.at("service");
    require(service.is_object(), "\"service\" must be an object");
    for (const char* key :
         {"requests", "placed", "rejected", "removed", "fault_events",
          "errors", "batches", "batched_requests", "tenants", "workers",
          "seconds", "throughput_rps"})
      check_number(service, key);
    const Value& cache = service.at("cache");
    for (const char* key : {"hits", "misses", "invalidations", "evictions",
                            "entries", "hit_rate"})
      check_number(cache, key);
    const Value& latency = service.at("latency");
    for (const char* key : {"count", "mean_ms", "p50_ms", "p99_ms", "max_ms"})
      check_number(latency, key);
    // Submit-to-completion latency split: time inside Tenant::apply vs
    // queue wait (total = service + queue per request).
    for (const char* section : {"latency_service", "latency_queue"}) {
      const Value& split = service.at(section);
      for (const char* key : {"mean_ms", "p50_ms", "p99_ms", "max_ms"})
        check_number(split, key);
    }
    // Admission/shed accounting (overload control).
    const Value& shed = service.at("shed");
    for (const char* key : {"submitted", "completed", "deadline", "quota",
                            "queue", "stopped", "submit_retries", "shed_rate"})
      check_number(shed, key);
  }
  // The soak section is optional (rrplace_cli --soak only), but when
  // present it must carry the invariant-audit contract.
  if (doc.contains("soak")) {
    const Value& soak = doc.at("soak");
    require(soak.is_object(), "\"soak\" must be an object");
    for (const char* key :
         {"requests", "epochs", "violations", "final_live", "lost",
          "min_tenant_completed_fraction"})
      check_number(soak, key);
  }
}

// A bench result is either a plain number or a {count,mean,min,max}
// RunningStats summary with a numeric mean.
void check_result_metric(const Value& results, const char* key) {
  require(results.contains(key),
          std::string("results missing key \"") + key + "\"");
  const Value& v = results.at(key);
  if (v.is_object()) {
    check_number(v, "mean");
  } else {
    require(v.is_number(), std::string("results.") + key +
                               " must be a number or summary object");
  }
}

void check_bench_v1(const Value& doc) {
  require(doc.contains("bench") && doc.at("bench").is_string(),
          "missing string key \"bench\"");
  require(doc.at("config").is_object(), "\"config\" must be an object");
  require(doc.at("results").is_object(), "\"results\" must be an object");
  const Value& metrics = doc.at("metrics");
  require(metrics.at("counters").is_object(),
          "metrics.counters must be an object");
  require(metrics.at("timers").is_object(),
          "metrics.timers must be an object");
  // Per-bench contracts: the metrics that CI pins via bench_diff must be
  // present, so a refactor cannot silently drop them from the record.
  const std::string& bench = doc.at("bench").as_string();
  const Value& results = doc.at("results");
  if (bench == "table_kernel") {
    for (const char* key : {"element_speedup", "table_speedup",
                            "combined_speedup", "mismatches"})
      check_result_metric(results, key);
  } else if (bench == "nonoverlap_kernel") {
    for (const char* key : {"speedup", "mismatches"})
      check_result_metric(results, key);
  } else if (bench == "anchor_kernel") {
    for (const char* key : {"anchor_speedup", "conflict_speedup",
                            "word_kernel_speedup", "mismatches"})
      check_result_metric(results, key);
  } else if (bench == "online_service") {
    for (const char* key :
         {"acceptance_without", "acceptance_with", "acceptance_defrag",
          "acceptance_gain", "defrag_attempts", "defrag_successes",
          "defrag_exact_successes", "defrag_greedy_successes",
          "defrag_relocated_modules", "defrag_relocated_tiles",
          "defrag_deadline_expiries", "defrag_rejects"})
      check_result_metric(results, key);
  } else if (bench == "service_load") {
    for (const char* key :
         {"requests", "throughput_rps", "throughput_rps_uncached",
          "throughput_rps_sweep", "cache_speedup", "index_speedup",
          "cache_hit_rate", "latency_p50_ms", "latency_p99_ms",
          "latency_p99_ms_uncached", "latency_p99_ms_sweep",
          "latency_service_p99_ms", "latency_queue_p99_ms",
          "latency_service_p99_ms_sweep", "service_p99_speedup",
          "batched_fraction", "mismatches"})
      check_result_metric(results, key);
  } else if (bench == "free_space") {
    for (const char* key :
         {"probes", "index_speedup", "decision_mismatches",
          "speedup_eval_50", "speedup_eval_80", "speedup_large_50",
          "speedup_large_80"})
      check_result_metric(results, key);
  } else if (bench == "comm_cost") {
    for (const char* key :
         {"requests", "wirelength2_first_fit", "wirelength2_comm",
          "wirelength_reduction", "acceptance_first_fit", "acceptance_comm",
          "zero_weight_mismatches", "index_sweep_mismatches"})
      check_result_metric(results, key);
  } else if (bench == "soak") {
    for (const char* key :
         {"requests", "tenants", "workers", "wave", "deadline_ms",
          "unloaded_p99_ms", "shed_p99_ms", "control_p99_ms",
          "shed_p99_ratio", "control_p99_ratio", "shed_rate",
          "shed_p99_within_bound", "invariant_violations"})
      check_result_metric(results, key);
  } else if (bench == "fault_recovery") {
    for (const char* key :
         {"recovered_fraction", "recovered_fraction_base",
          "utilization_retained", "utilization_retained_base",
          "capacity_retained", "recovery_seconds", "modules_hit_mean",
          "parked_mean", "events", "tiles_faulted", "inplace_swaps",
          "local_replaces", "defrag_recoveries", "greedy_recoveries",
          "parked", "retry_recoveries", "abandoned", "deadline_expiries",
          "relocated_modules", "relocated_tiles"})
      check_result_metric(results, key);
  }
}

void check_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw rr::InvalidInput("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const Value doc = rr::json::parse(buffer.str());
  require(doc.is_object(), "document root must be an object");
  const std::string schema =
      doc.contains("schema") && doc.at("schema").is_string()
          ? doc.at("schema").as_string()
          : "";
  if (schema == "rrplace-stats-v1") {
    check_stats_v1(doc);
  } else if (schema == "rrplace-bench-v1") {
    check_bench_v1(doc);
  } else {
    throw rr::InvalidInput("unknown or missing \"schema\": \"" + schema +
                           "\"");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: check_stats_json <file.json> [...]\n";
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    try {
      check_file(argv[i]);
      std::cout << argv[i] << ": ok\n";
    } catch (const std::exception& e) {
      std::cerr << argv[i] << ": FAIL: " << e.what() << '\n';
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
